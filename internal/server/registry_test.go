package server

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"icash/internal/sim"
)

// errTestFlush is the injected flush failure for the router barrier
// test.
var errTestFlush = errors.New("injected flush failure")

// flushCountBackend counts flushes over a fixed-size in-memory store.
type flushCountBackend struct {
	flushes int
	fail    error
}

func (f *flushCountBackend) ReadBlock(lba int64, buf []byte) (sim.Duration, error)  { return 0, nil }
func (f *flushCountBackend) WriteBlock(lba int64, buf []byte) (sim.Duration, error) { return 0, nil }
func (f *flushCountBackend) Blocks() int64                                          { return 64 }
func (f *flushCountBackend) Flush() error {
	f.flushes++
	return f.fail
}

func newServingSession(t *testing.T, name string, backend Backend) *Session {
	t.Helper()
	s := NewSession(name, backend, SessionOptions{MaxWindow: 4})
	hello := AppendHello(nil, Hello{Version: ProtocolVersion, VM: AnyVM, WantWindow: 4})
	if _, err := s.Feed(hello); err != nil {
		t.Fatalf("handshake: %v", err)
	}
	if s.State() != StateServing {
		t.Fatalf("session state %v after handshake", s.State())
	}
	return s
}

// TestRegistryAddRemove pins registration bookkeeping.
func TestRegistryAddRemove(t *testing.T) {
	b := &flushCountBackend{}
	r := NewRegistry()
	s1 := newServingSession(t, "a", b)
	s2 := newServingSession(t, "b", b)
	id1, err := r.Add(s1)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := r.Add(s2)
	if err != nil {
		t.Fatal(err)
	}
	if id1 == id2 {
		t.Fatalf("duplicate session ids: %d", id1)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	r.Remove(id1)
	r.Remove(id1) // double remove is benign
	if r.Len() != 1 {
		t.Fatalf("Len after remove = %d, want 1", r.Len())
	}
}

// TestRegistryStats pins deterministic aggregation across sessions.
func TestRegistryStats(t *testing.T) {
	b := &flushCountBackend{}
	r := NewRegistry()
	for i := 0; i < 3; i++ {
		s := newServingSession(t, "s", b)
		// One read each so the aggregate is visible.
		req := AppendRequest(nil, Request{Op: OpRead, ID: 1, LBA: uint64(i), Blocks: 1})
		if _, err := s.Feed(req); err != nil {
			t.Fatalf("read: %v", err)
		}
		if _, err := r.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	total := r.Stats()
	if total.Reads != 3 {
		t.Fatalf("aggregate Reads = %d, want 3", total.Reads)
	}
	if total.Requests != 3 {
		t.Fatalf("aggregate Requests = %d, want 3", total.Requests)
	}
}

// TestRegistryDrain pins the shutdown contract: drain flushes the
// backend once, captures the aggregate, and refuses late registration.
func TestRegistryDrain(t *testing.T) {
	b := &flushCountBackend{}
	r := NewRegistry()
	s := newServingSession(t, "a", b)
	if _, err := r.Add(s); err != nil {
		t.Fatal(err)
	}
	total, err := r.Drain(b)
	if err != nil {
		t.Fatal(err)
	}
	if b.flushes != 1 {
		t.Fatalf("drain flushed %d times, want 1", b.flushes)
	}
	if total.Requests != 0 {
		t.Fatalf("aggregate Requests = %d, want 0", total.Requests)
	}
	if _, err := r.Add(newServingSession(t, "late", b)); err == nil {
		t.Fatal("Add after Drain succeeded; want refusal")
	} else if !strings.Contains(err.Error(), "draining") {
		t.Fatalf("Add after Drain: unexpected error %v", err)
	}
}

// recordBackend counts ops without any internal locking, so the race
// detector proves the router serializes everything that reaches one
// shard.
type recordBackend struct {
	reads, writes, flushes int
	lastLBA                int64
	fail                   error
}

func (b *recordBackend) ReadBlock(lba int64, buf []byte) (sim.Duration, error) {
	b.reads++
	b.lastLBA = lba
	return 0, nil
}
func (b *recordBackend) WriteBlock(lba int64, buf []byte) (sim.Duration, error) {
	b.writes++
	b.lastLBA = lba
	return 0, nil
}
func (b *recordBackend) Blocks() int64 { return 64 }
func (b *recordBackend) Flush() error {
	b.flushes++
	return b.fail
}

// TestShardRouterRoutes pins the routing arithmetic: global LBAs split
// into (shard, local) by the uniform shard size, out-of-range LBAs are
// refused before any shard is touched.
func TestShardRouterRoutes(t *testing.T) {
	inner := []*recordBackend{{}, {}, {}, {}}
	shards := make([]Backend, len(inner))
	for i := range inner {
		shards[i] = inner[i]
	}
	r, err := NewShardRouter(shards)
	if err != nil {
		t.Fatal(err)
	}
	if r.Blocks() != 256 || r.NumShards() != 4 || r.ShardBlocks() != 64 {
		t.Fatalf("shape: blocks=%d shards=%d per=%d", r.Blocks(), r.NumShards(), r.ShardBlocks())
	}
	buf := make([]byte, 4096)
	if _, err := r.WriteBlock(70, buf); err != nil {
		t.Fatal(err)
	}
	if inner[1].writes != 1 || inner[1].lastLBA != 6 {
		t.Fatalf("lba 70: shard 1 saw writes=%d lastLBA=%d, want 1/6", inner[1].writes, inner[1].lastLBA)
	}
	if _, err := r.ReadBlock(255, buf); err != nil {
		t.Fatal(err)
	}
	if inner[3].reads != 1 || inner[3].lastLBA != 63 {
		t.Fatalf("lba 255: shard 3 saw reads=%d lastLBA=%d, want 1/63", inner[3].reads, inner[3].lastLBA)
	}
	for _, lba := range []int64{-1, 256} {
		if _, err := r.ReadBlock(lba, buf); err == nil {
			t.Errorf("read of lba %d succeeded; want range error", lba)
		}
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, b := range inner {
		if b.flushes != 1 {
			t.Errorf("shard %d flushed %d times, want 1", i, b.flushes)
		}
	}
}

// TestShardRouterSerializes drives concurrent writers and flushers
// through the router; the backends hold no locks of their own, so -race
// proves the per-shard addresses serialize every path (including the
// all-shards flush barrier), and the counters prove no call was lost.
func TestShardRouterSerializes(t *testing.T) {
	inner := []*recordBackend{{}, {}}
	r, err := NewShardRouter([]Backend{inner[0], inner[1]})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(4)
	for g := 0; g < 4; g++ {
		g := g
		go func() {
			defer wg.Done()
			local := make([]byte, 4096)
			for i := 0; i < 50; i++ {
				// Two goroutines per shard, plus everyone crossing the
				// flush barrier.
				lba := int64((g%2)*64 + i%64)
				if _, err := r.WriteBlock(lba, local); err != nil {
					t.Error(err)
					return
				}
				if err := r.Flush(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := inner[0].writes + inner[1].writes; got != 200 {
		t.Fatalf("writes = %d, want 200", got)
	}
	if inner[0].flushes != 200 || inner[1].flushes != 200 {
		t.Fatalf("flushes = %d/%d, want 200/200", inner[0].flushes, inner[1].flushes)
	}
}

// sizedBackend is a recordBackend with a configurable size, for the
// uniformity checks.
type sizedBackend struct {
	recordBackend
	blocks int64
}

func (b *sizedBackend) Blocks() int64 { return b.blocks }

// TestShardRouterRejectsRaggedShards pins the uniformity requirement.
func TestShardRouterRejectsRaggedShards(t *testing.T) {
	if _, err := NewShardRouter(nil); err == nil {
		t.Error("empty shard list accepted")
	}
	if _, err := NewShardRouter([]Backend{&sizedBackend{blocks: 64}, &sizedBackend{blocks: 32}}); err == nil {
		t.Error("ragged shard sizes accepted")
	}
	if _, err := NewShardRouter([]Backend{&sizedBackend{blocks: 0}}); err == nil {
		t.Error("zero-size shard accepted")
	}
}

// TestShardRouterFlushError pins first-error-wins across the barrier.
func TestShardRouterFlushError(t *testing.T) {
	bad := &recordBackend{fail: errTestFlush}
	r, err := NewShardRouter([]Backend{&recordBackend{}, bad})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Flush(); err == nil || !strings.Contains(err.Error(), "shard 1 flush") {
		t.Fatalf("Flush error = %v, want shard 1 flush wrap", err)
	}
	// The barrier must have released: a second flush still runs.
	if err := r.Flush(); err == nil {
		t.Fatal("second Flush returned nil; want the persistent error again")
	}
	if bad.flushes != 2 {
		t.Fatalf("bad shard flushed %d times, want 2", bad.flushes)
	}
}
