package server

import (
	"strings"
	"sync"
	"testing"

	"icash/internal/sim"
)

// flushCountBackend counts flushes over a fixed-size in-memory store.
type flushCountBackend struct {
	flushes int
	fail    error
}

func (f *flushCountBackend) ReadBlock(lba int64, buf []byte) (sim.Duration, error)  { return 0, nil }
func (f *flushCountBackend) WriteBlock(lba int64, buf []byte) (sim.Duration, error) { return 0, nil }
func (f *flushCountBackend) Blocks() int64                                          { return 64 }
func (f *flushCountBackend) Flush() error {
	f.flushes++
	return f.fail
}

func newServingSession(t *testing.T, name string, backend Backend) *Session {
	t.Helper()
	s := NewSession(name, backend, SessionOptions{MaxWindow: 4})
	hello := AppendHello(nil, Hello{Version: ProtocolVersion, VM: AnyVM, WantWindow: 4})
	if _, err := s.Feed(hello); err != nil {
		t.Fatalf("handshake: %v", err)
	}
	if s.State() != StateServing {
		t.Fatalf("session state %v after handshake", s.State())
	}
	return s
}

// TestRegistryAddRemove pins registration bookkeeping.
func TestRegistryAddRemove(t *testing.T) {
	b := &flushCountBackend{}
	r := NewRegistry()
	s1 := newServingSession(t, "a", b)
	s2 := newServingSession(t, "b", b)
	id1, err := r.Add(s1)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := r.Add(s2)
	if err != nil {
		t.Fatal(err)
	}
	if id1 == id2 {
		t.Fatalf("duplicate session ids: %d", id1)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	r.Remove(id1)
	r.Remove(id1) // double remove is benign
	if r.Len() != 1 {
		t.Fatalf("Len after remove = %d, want 1", r.Len())
	}
}

// TestRegistryStats pins deterministic aggregation across sessions.
func TestRegistryStats(t *testing.T) {
	b := &flushCountBackend{}
	r := NewRegistry()
	for i := 0; i < 3; i++ {
		s := newServingSession(t, "s", b)
		// One read each so the aggregate is visible.
		req := AppendRequest(nil, Request{Op: OpRead, ID: 1, LBA: uint64(i), Blocks: 1})
		if _, err := s.Feed(req); err != nil {
			t.Fatalf("read: %v", err)
		}
		if _, err := r.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	total := r.Stats()
	if total.Reads != 3 {
		t.Fatalf("aggregate Reads = %d, want 3", total.Reads)
	}
	if total.Requests != 3 {
		t.Fatalf("aggregate Requests = %d, want 3", total.Requests)
	}
}

// TestRegistryDrain pins the shutdown contract: drain flushes the
// backend once, captures the aggregate, and refuses late registration.
func TestRegistryDrain(t *testing.T) {
	b := &flushCountBackend{}
	r := NewRegistry()
	s := newServingSession(t, "a", b)
	if _, err := r.Add(s); err != nil {
		t.Fatal(err)
	}
	total, err := r.Drain(b)
	if err != nil {
		t.Fatal(err)
	}
	if b.flushes != 1 {
		t.Fatalf("drain flushed %d times, want 1", b.flushes)
	}
	if total.Requests != 0 {
		t.Fatalf("aggregate Requests = %d, want 0", total.Requests)
	}
	if _, err := r.Add(newServingSession(t, "late", b)); err == nil {
		t.Fatal("Add after Drain succeeded; want refusal")
	} else if !strings.Contains(err.Error(), "draining") {
		t.Fatalf("Add after Drain: unexpected error %v", err)
	}
}

// TestLockedBackendSerializes funnels concurrent writers through a
// LockedBackend; -race proves the serialization, the counter proves no
// call was lost.
func TestLockedBackendSerializes(t *testing.T) {
	inner := &flushCountBackend{}
	lb := NewLockedBackend(inner)
	if lb.Blocks() != 64 {
		t.Fatalf("Blocks = %d, want 64", lb.Blocks())
	}
	var wg sync.WaitGroup
	buf := make([]byte, 4096)
	wg.Add(4)
	for g := 0; g < 4; g++ {
		go func() {
			defer wg.Done()
			local := make([]byte, len(buf))
			for i := 0; i < 50; i++ {
				if _, err := lb.WriteBlock(int64(i%64), local); err != nil {
					t.Error(err)
					return
				}
				if err := lb.Flush(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if inner.flushes != 200 {
		t.Fatalf("flushes = %d, want 200", inner.flushes)
	}
}
