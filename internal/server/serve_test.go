package server

import (
	"hash/fnv"
	"sync"
	"testing"

	"icash/internal/blockdev"
	"icash/internal/core"
	"icash/internal/harness"
	"icash/internal/metrics"
	"icash/internal/workload"
)

// fingerprint hashes the final content of every virtual block the
// controller serves — the data-set identity of a finished run.
func fingerprint(t *testing.T, ctrl *core.Controller) uint64 {
	t.Helper()
	h := fnv.New64a()
	buf := make([]byte, blockdev.BlockSize)
	for lba := int64(0); lba < ctrl.Blocks(); lba++ {
		if _, err := ctrl.ReadBlock(lba, buf); err != nil {
			t.Fatalf("fingerprint read lba %d: %v", lba, err)
		}
		h.Write(buf)
	}
	return h.Sum64()
}

// resilienceString renders the resilience counters for equality checks.
func resilienceString(st *core.Stats) string {
	return metrics.FormatCounters(metrics.ResilienceCounters(st), "", false)
}

// TestServedEqualsInproc is the regression the front-end must never
// break: a profile served through framed sessions ends with the exact
// same data set as the in-process harness, with identical resilience
// counters, and the served run itself is byte-identical whether one or
// many runs share the process (run under -race in CI).
func TestServedEqualsInproc(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run regression is not a -short test")
	}
	p := workload.TPCC5VM()
	opts := workload.Options{Scale: 1.0 / 2048, MaxOps: 1500, Seed: 11, QueueDepth: 4, StreamPerVM: true}

	// The direct run: the same workload through the in-process
	// concurrent harness.
	br, err := harness.RunBenchmark(p, opts, []harness.Kind{harness.ICASH})
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}
	directFP := fingerprint(t, br.SysICASH)
	directRes := resilienceString(br.Results[harness.ICASH].ICASHStats)

	type servedOut struct {
		fp  uint64
		res string
		err error
	}

	defer harness.SetParallelism(harness.Parallelism())
	for _, par := range []int{1, 4, 8} {
		harness.SetParallelism(par)
		outs := make([]servedOut, par)
		var wg sync.WaitGroup
		wg.Add(par)
		for i := 0; i < par; i++ {
			go func(i int) {
				defer wg.Done()
				sr, err := RunServed(p, opts, DefaultSimConfig())
				if err != nil {
					outs[i] = servedOut{err: err}
					return
				}
				var fp uint64
				func() {
					// fingerprint fatals through t; recover its value via a
					// plain error path instead inside goroutines.
					h := fnv.New64a()
					buf := make([]byte, blockdev.BlockSize)
					for lba := int64(0); lba < sr.Sys.ICASH.Blocks(); lba++ {
						if _, err := sr.Sys.ICASH.ReadBlock(lba, buf); err != nil {
							outs[i] = servedOut{err: err}
							return
						}
						h.Write(buf)
					}
					fp = h.Sum64()
				}()
				if outs[i].err != nil {
					return
				}
				outs[i] = servedOut{fp: fp, res: resilienceString(sr.Stats)}
			}(i)
		}
		wg.Wait()
		for i, out := range outs {
			if out.err != nil {
				t.Fatalf("parallel %d, run %d: %v", par, i, out.err)
			}
			if out.fp != directFP {
				t.Fatalf("parallel %d, run %d: served fingerprint %#x != direct %#x — the wire changed the data",
					par, i, out.fp, directFP)
			}
			if out.res != directRes {
				t.Fatalf("parallel %d, run %d: resilience counters diverge:\nserved: %q\ndirect: %q",
					par, i, out.res, directRes)
			}
		}
	}
}

// TestServedRunAccounting covers the run-level wiring in one small
// served run: graceful drain (empty journal, invariants hold), closed
// sessions, populated per-session stats, stations, and latency
// histograms — everything icash-inspect renders.
func TestServedRunAccounting(t *testing.T) {
	p := workload.TPCC5VM()
	opts := workload.Options{Scale: 1.0 / 2048, MaxOps: 800, Seed: 7, StreamPerVM: true}
	cfg := DefaultSimConfig()
	cfg.Window = 4
	sr, err := RunServed(p, opts, cfg)
	if err != nil {
		t.Fatalf("RunServed: %v", err)
	}

	// Graceful shutdown drained every session through the journal: no
	// transaction may be left incomplete on the media.
	if n, err := sr.Sys.ICASH.AuditJournal(); err != nil || n != 0 {
		t.Fatalf("journal after drain: %d incomplete, err %v", n, err)
	}
	if err := sr.Sys.ICASH.CheckInvariants(); err != nil {
		t.Fatalf("invariants after served run: %v", err)
	}

	if len(sr.Sessions) != 5 {
		t.Fatalf("%d sessions, want 5 (one per VM)", len(sr.Sessions))
	}
	var reqs, reads, writes, flushes int64
	for _, s := range sr.Sessions {
		if s.VM < 0 || s.VM > 4 {
			t.Fatalf("session %s pinned to vm %d", s.Name, s.VM)
		}
		if s.Stats.Requests == 0 || s.Stats.BytesIn == 0 || s.Stats.BytesOut == 0 {
			t.Fatalf("session %s has empty accounting: %+v", s.Name, s.Stats)
		}
		if s.Station.Ops == 0 {
			t.Fatalf("session %s uplink station saw no ops", s.Name)
		}
		reqs += s.Stats.Requests
		reads += s.Stats.Reads
		writes += s.Stats.Writes
		flushes += s.Stats.Flushes
	}
	// Every session's last token carries an OpClose, whose flush is the
	// drain — so flushes count the graceful shutdowns.
	if flushes != int64(len(sr.Sessions)) {
		t.Fatalf("%d flushes, want exactly one close-drain per session", flushes)
	}
	if reqs != sr.Ops+int64(len(sr.Sessions)) {
		t.Fatalf("sessions saw %d requests, run counted %d ops + %d closes", reqs, sr.Ops, len(sr.Sessions))
	}
	if reads != sr.Reads || writes != sr.Writes {
		t.Fatalf("session op mix (%d r / %d w) != run (%d r / %d w)", reads, writes, sr.Reads, sr.Writes)
	}
	if sr.ReadHist.Count() != sr.Reads || sr.WriteHist.Count() != sr.Writes {
		t.Fatalf("latency histograms (%d r / %d w) do not cover the ops (%d r / %d w)",
			sr.ReadHist.Count(), sr.WriteHist.Count(), sr.Reads, sr.Writes)
	}
	if sr.Elapsed <= 0 || sr.ReqPerSec <= 0 {
		t.Fatalf("elapsed %v, %f req/s — timeline did not advance", sr.Elapsed, sr.ReqPerSec)
	}
	if sr.Stats == nil || sr.Stats.TxnsCommitted == 0 {
		t.Fatal("controller stats missing or no journal transactions committed")
	}
	if sr.Report() == "" {
		t.Fatal("empty report")
	}
}

// TestServedDeterminism runs the same served configuration twice in the
// same process and demands identical timelines, histograms, and
// accounting — the determinism claim at its strictest.
func TestServedDeterminism(t *testing.T) {
	p := workload.SysBench()
	opts := workload.Options{Scale: 1.0 / 1024, MaxOps: 600, Seed: 3}
	cfg := DefaultSimConfig()
	cfg.Window = 4

	a, err := RunServed(p, opts, cfg)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := RunServed(p, opts, cfg)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if a.Report() != b.Report() {
		t.Fatalf("two identical served runs rendered different reports:\n--- a\n%s\n--- b\n%s", a.Report(), b.Report())
	}
	if a.Elapsed != b.Elapsed || a.Ops != b.Ops {
		t.Fatalf("run identity diverged: %v/%d vs %v/%d", a.Elapsed, a.Ops, b.Elapsed, b.Ops)
	}
}
