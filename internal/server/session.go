package server

import (
	"fmt"

	"icash/internal/blockdev"
	"icash/internal/sim"
)

// Backend is what a session drives: the controller (or any system in
// the harness) viewed as a flushable block device. core.Controller
// satisfies it directly.
type Backend interface {
	ReadBlock(lba int64, buf []byte) (sim.Duration, error)
	WriteBlock(lba int64, buf []byte) (sim.Duration, error)
	Flush() error
	Blocks() int64
}

// SessionState is the session's lifecycle position.
type SessionState int

const (
	// StateHandshake: waiting for the client hello.
	StateHandshake SessionState = iota
	// StateServing: handshake done, requests flowing.
	StateServing
	// StateClosed: the session ended cleanly (OpClose acknowledged, a
	// handshake refusal, or a clean disconnect between frames).
	StateClosed
	// StateFailed: a protocol fault or fatal device error tore the
	// session down.
	StateFailed
)

// String names the state for diagnostics.
func (s SessionState) String() string {
	switch s {
	case StateHandshake:
		return "handshake"
	case StateServing:
		return "serving"
	case StateClosed:
		return "closed"
	case StateFailed:
		return "failed"
	default:
		return fmt.Sprintf("SessionState(%d)", int(s))
	}
}

// SessionStats is the per-session accounting surfaced to icash-inspect.
type SessionStats struct {
	BytesIn  int64
	BytesOut int64
	Requests int64
	Reads    int64
	Writes   int64
	Flushes  int64
	Trims    int64
	// StatusErrors counts replies with a non-OK status (absorbed device
	// errors, out-of-partition requests).
	StatusErrors int64
	// Service is the summed backend service time of every executed
	// request — the session's demand on the array.
	Service sim.Duration
}

// SessionOptions configures a session.
type SessionOptions struct {
	// MaxWindow caps the granted in-flight window (0 = MaxWindow).
	MaxWindow int
	// Partition maps the hello's VM field to the session's LBA range.
	// ok == false refuses the handshake. Nil serves every VM the whole
	// device.
	Partition func(vm uint32) (first, blocks int64, ok bool)
}

// Session is the server-side state machine for one connection. It is a
// pure byte machine — no clock, no goroutines, no I/O of its own — so
// the same code serves simulated event-driven clients and real TCP
// connections. Not safe for concurrent use.
type Session struct {
	name    string
	backend Backend
	opt     SessionOptions

	state  SessionState
	window int
	first  int64 // negotiated partition start
	blocks int64 // negotiated partition length

	dec Decoder
	out []byte
	// pending collects the complete frames of one Feed burst before any
	// executes: the window check sees the whole burst, and a malformed
	// frame poisons the burst before side effects.
	pending []Request
	// burstIDs detects id reuse within the in-flight window. Cleared
	// (not reallocated) per burst; replies retire ids synchronously, so
	// the in-flight set is exactly the burst.
	burstIDs map[uint64]struct{}

	stats   SessionStats
	block   [blockdev.BlockSize]byte
	payload []byte // read-reply staging, reused across requests
}

// NewSession returns a session in the handshake state, serving backend.
func NewSession(name string, backend Backend, opt SessionOptions) *Session {
	if opt.MaxWindow <= 0 || opt.MaxWindow > MaxWindow {
		opt.MaxWindow = MaxWindow
	}
	return &Session{
		name:     name,
		backend:  backend,
		opt:      opt,
		burstIDs: make(map[uint64]struct{}),
	}
}

// Name returns the session label.
func (s *Session) Name() string { return s.name }

// State returns the lifecycle position.
func (s *Session) State() SessionState { return s.state }

// Window returns the granted in-flight window (0 before handshake).
func (s *Session) Window() int { return s.window }

// Partition returns the negotiated LBA range (after handshake).
func (s *Session) Partition() (first, blocks int64) { return s.first, s.blocks }

// Stats returns a copy of the accounting.
func (s *Session) Stats() SessionStats { return s.stats }

// fail marks the session dead and returns err.
func (s *Session) fail(err error) ([]byte, error) {
	s.state = StateFailed
	return s.out, err
}

// Feed hands the session received bytes and returns the reply bytes to
// transmit. The returned slice is valid until the next Feed call. A
// non-nil error is fatal to the session: a *Fault for protocol
// violations, or a wrapped backend error for an unrecoverable device
// failure (absorbed device errors become StatusIO replies instead).
func (s *Session) Feed(p []byte) ([]byte, error) {
	s.out = s.out[:0]
	s.stats.BytesIn += int64(len(p))
	s.dec.Feed(p)

	if s.state == StateHandshake {
		done, err := s.handshake()
		if err != nil || !done {
			return s.out, err
		}
	}
	if s.state == StateClosed || s.state == StateFailed {
		if s.dec.Buffered() > 0 {
			return s.fail(faultf(FaultState, "%s: %d bytes after session %s", s.name, s.dec.Buffered(), s.state))
		}
		return s.out, nil
	}

	// Parse the whole burst before executing any of it.
	s.pending = s.pending[:0]
	clear(s.burstIDs)
	for {
		req, err := s.dec.NextRequest()
		if err == ErrNeedMore {
			break
		}
		if err != nil {
			return s.fail(err)
		}
		if _, dup := s.burstIDs[req.ID]; dup {
			return s.fail(faultf(FaultDupID, "%s: request id %d reused in flight", s.name, req.ID))
		}
		s.burstIDs[req.ID] = struct{}{}
		s.pending = append(s.pending, req)
		if len(s.pending) > s.window {
			return s.fail(faultf(FaultWindow, "%s: %d requests in flight, window is %d", s.name, len(s.pending), s.window))
		}
	}

	// Execute FIFO; replies are emitted in request order, so a client
	// tracker sees completions exactly as the array retired them.
	for i := range s.pending {
		if err := s.execute(&s.pending[i]); err != nil {
			return s.fail(err)
		}
		if s.state == StateClosed {
			if i < len(s.pending)-1 || s.dec.Buffered() > 0 {
				return s.fail(faultf(FaultState, "%s: frames after close", s.name))
			}
			break
		}
	}
	s.stats.BytesOut += int64(len(s.out))
	return s.out, nil
}

// handshake consumes the hello once enough bytes arrived. done reports
// whether serving may begin this Feed.
func (s *Session) handshake() (done bool, err error) {
	h, err := s.dec.NextHello()
	if err == ErrNeedMore {
		return false, nil
	}
	if err != nil {
		s.state = StateFailed
		return false, err
	}
	refuse := func(status uint32, f *Fault) (bool, error) {
		s.out = AppendHelloReply(s.out, HelloReply{Version: ProtocolVersion, Status: status})
		s.stats.BytesOut += int64(len(s.out))
		s.state = StateClosed
		return false, f
	}
	if h.Version != ProtocolVersion {
		return refuse(RefuseVersion, faultf(FaultVersion, "%s: client version %d, server speaks %d", s.name, h.Version, ProtocolVersion))
	}
	if h.Flags != 0 {
		return refuse(RefuseBadRequest, faultf(FaultOp, "%s: reserved hello flags %#x", s.name, h.Flags))
	}
	first, blocks := int64(0), s.backend.Blocks()
	if s.opt.Partition != nil {
		var ok bool
		first, blocks, ok = s.opt.Partition(h.VM)
		if !ok {
			return refuse(RefuseVM, faultf(FaultVM, "%s: vm %d not served", s.name, h.VM))
		}
	}
	w := int(h.WantWindow)
	if w < 1 {
		w = 1
	}
	if w > s.opt.MaxWindow {
		w = s.opt.MaxWindow
	}
	s.window = w
	s.first, s.blocks = first, blocks
	s.state = StateServing
	s.out = AppendHelloReply(s.out, HelloReply{
		Version:   ProtocolVersion,
		Window:    uint16(w),
		Status:    HandshakeOK,
		BlockSize: blockdev.BlockSize,
		FirstLBA:  uint64(first),
		Blocks:    uint64(blocks),
	})
	return true, nil
}

// inPartition reports whether [lba, lba+n) lies inside the session's
// negotiated range.
func (s *Session) inPartition(lba uint64, n uint32) bool {
	end := uint64(s.first) + uint64(s.blocks)
	return lba >= uint64(s.first) && lba <= end && uint64(n) <= end-lba
}

// absorb classifies a backend error: device-lost is fatal (returned,
// wrapped), anything else is absorbed into a StatusIO reply.
func (s *Session) absorb(req *Request, op string, err error) error {
	if blockdev.Classify(err) == blockdev.ClassDeviceLost {
		return fmt.Errorf("server: %s: %s request %d lba %d: %w", s.name, op, req.ID, req.LBA, err)
	}
	s.stats.StatusErrors++
	s.out = AppendReply(s.out, Reply{Op: req.Op, Status: StatusIO, ID: req.ID})
	return nil
}

// execute runs one request against the backend and appends its reply.
func (s *Session) execute(req *Request) error {
	s.stats.Requests++
	switch req.Op {
	case OpRead, OpWrite, OpTrim:
		if !s.inPartition(req.LBA, req.Blocks) {
			s.stats.StatusErrors++
			s.out = AppendReply(s.out, Reply{Op: req.Op, Status: StatusRange, ID: req.ID})
			return nil
		}
	}
	switch req.Op {
	case OpRead:
		s.stats.Reads++
		s.payload = s.payload[:0]
		for i := uint32(0); i < req.Blocks; i++ {
			d, err := s.backend.ReadBlock(int64(req.LBA)+int64(i), s.block[:])
			if err != nil {
				return s.absorb(req, "read", err)
			}
			s.stats.Service += d
			s.payload = append(s.payload, s.block[:]...)
		}
		s.out = AppendReply(s.out, Reply{Op: OpRead, Status: StatusOK, ID: req.ID, Payload: s.payload})
	case OpWrite:
		s.stats.Writes++
		for i := uint32(0); i < req.Blocks; i++ {
			chunk := req.Payload[i*blockdev.BlockSize : (i+1)*blockdev.BlockSize]
			d, err := s.backend.WriteBlock(int64(req.LBA)+int64(i), chunk)
			if err != nil {
				return s.absorb(req, "write", err)
			}
			s.stats.Service += d
		}
		s.out = AppendReply(s.out, Reply{Op: OpWrite, Status: StatusOK, ID: req.ID})
	case OpTrim:
		s.stats.Trims++
		clear(s.block[:])
		for i := uint32(0); i < req.Blocks; i++ {
			d, err := s.backend.WriteBlock(int64(req.LBA)+int64(i), s.block[:])
			if err != nil {
				return s.absorb(req, "trim", err)
			}
			s.stats.Service += d
		}
		s.out = AppendReply(s.out, Reply{Op: OpTrim, Status: StatusOK, ID: req.ID})
	case OpFlush:
		s.stats.Flushes++
		if err := s.backend.Flush(); err != nil {
			return s.absorb(req, "flush", err)
		}
		s.out = AppendReply(s.out, Reply{Op: OpFlush, Status: StatusOK, ID: req.ID})
	case OpClose:
		// Graceful shutdown: drain in-flight transactions through the
		// group-commit journal before acknowledging — the close ack
		// promises everything the session acknowledged is durable.
		s.stats.Flushes++
		if err := s.backend.Flush(); err != nil {
			return s.absorb(req, "close", err)
		}
		s.out = AppendReply(s.out, Reply{Op: OpClose, Status: StatusOK, ID: req.ID})
		s.state = StateClosed
	}
	return nil
}

// CloseStream reports the transport ended. A clean end between frames
// is fine (the session just closes); bytes buffered mid-frame mean the
// peer died mid-transaction and surface as FaultTruncated.
func (s *Session) CloseStream() error {
	if s.state == StateFailed {
		return nil
	}
	buffered := s.dec.Buffered()
	if buffered > 0 {
		s.state = StateFailed
		return faultf(FaultTruncated, "%s: stream ended with %d bytes of a partial frame", s.name, buffered)
	}
	if s.state != StateClosed {
		s.state = StateClosed
	}
	return nil
}
