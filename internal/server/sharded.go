package server

import (
	"fmt"

	"icash/internal/lockmap"
	"icash/internal/sim"
)

// ShardRouter fans concurrent sessions across the per-shard backends of
// a sharded array. Each shard is still single-threaded — determinism
// inside a shard comes from serialized mutation under the one sim.Clock
// — so the router holds a per-shard address in a lockmap while a
// request is inside that shard. Sessions whose partitions land on
// different shards (the block service aligns VM images to shard
// boundaries) proceed in parallel; sessions sharing a shard serialize
// on its address exactly as the retired LockedBackend serialized the
// whole array.
//
// The simulated durations the shards return are reported on the wire
// but not slept out, same as before; the clock is only read on this
// path, never advanced, which is what makes cross-shard concurrency
// safe at all.
type ShardRouter struct {
	locks       lockmap.LockMap // one address per shard index
	shards      []Backend
	shardBlocks int64
	blocks      int64
}

// NewShardRouter composes per-shard backends into one Backend spanning
// their concatenated LBA ranges. All shards must report the same size —
// the routing divide depends on it (core.NewSharded enforces the same
// uniformity one layer down). A single-element slice degenerates to the
// old whole-array funnel: one address, every session behind it.
func NewShardRouter(shards []Backend) (*ShardRouter, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("server: NewShardRouter: no shards")
	}
	per := shards[0].Blocks()
	if per <= 0 {
		return nil, fmt.Errorf("server: NewShardRouter: shard 0 reports %d blocks", per)
	}
	for i, s := range shards[1:] {
		if s.Blocks() != per {
			return nil, fmt.Errorf("server: NewShardRouter: shard %d has %d blocks, shard 0 has %d (shards must be uniform)",
				i+1, s.Blocks(), per)
		}
	}
	return &ShardRouter{
		shards:      shards,
		shardBlocks: per,
		blocks:      per * int64(len(shards)),
	}, nil
}

// route maps a global LBA to (shard index, shard-local LBA).
func (r *ShardRouter) route(lba int64) (int, int64, error) {
	if lba < 0 || lba >= r.blocks {
		return 0, 0, fmt.Errorf("server: lba %d out of range [0,%d)", lba, r.blocks)
	}
	return int(lba / r.shardBlocks), lba % r.shardBlocks, nil
}

// ReadBlock serializes a read onto the owning shard.
func (r *ShardRouter) ReadBlock(lba int64, buf []byte) (sim.Duration, error) {
	shard, local, err := r.route(lba)
	if err != nil {
		return 0, err
	}
	r.locks.Acquire(uint64(shard))
	defer r.locks.Release(uint64(shard))
	//lint:ignore lockorder the shard address IS the per-shard exclusion token: holding it across the device call serializes only this shard's single-threaded controller, which is the sharded design's contract — other shards keep serving
	return r.shards[shard].ReadBlock(local, buf)
}

// WriteBlock serializes a write onto the owning shard.
func (r *ShardRouter) WriteBlock(lba int64, buf []byte) (sim.Duration, error) {
	shard, local, err := r.route(lba)
	if err != nil {
		return 0, err
	}
	r.locks.Acquire(uint64(shard))
	defer r.locks.Release(uint64(shard))
	//lint:ignore lockorder the shard address IS the per-shard exclusion token: holding it across the device call serializes only this shard's single-threaded controller, which is the sharded design's contract — other shards keep serving
	return r.shards[shard].WriteBlock(local, buf)
}

// Flush drains every shard under a whole-array barrier: all shard
// addresses are acquired in ascending index order, every shard is
// flushed, and the first error wins. Holding the full set briefly
// quiesces the array, which is exactly what a flush barrier — drain,
// registry shutdown, crash-consistency checkpoints — asks for.
//
// The nesting is the Acquire2 canonical-order argument generalized to
// n addresses: distinct addresses of one class taken in ascending
// index order cannot form an ABBA cycle against a concurrent flush,
// and the per-shard device work runs under that shard's own exclusion
// token, same as the read/write paths. The lockorder analyzer's
// lexical held-set does not carry holds across loop iterations, so
// this discipline is covered by TestShardRouterSerializes under -race
// rather than by a directive.
func (r *ShardRouter) Flush() error {
	for i := range r.shards {
		r.locks.Acquire(uint64(i))
	}
	var firstErr error
	for i, s := range r.shards {
		if err := s.Flush(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("server: shard %d flush: %w", i, err)
		}
	}
	for i := range r.shards {
		r.locks.Release(uint64(i))
	}
	return firstErr
}

// Blocks reports the composed size. It is fixed at construction, so no
// lock is taken.
func (r *ShardRouter) Blocks() int64 { return r.blocks }

// NumShards reports the shard count.
func (r *ShardRouter) NumShards() int { return len(r.shards) }

// ShardBlocks reports the per-shard capacity.
func (r *ShardRouter) ShardBlocks() int64 { return r.shardBlocks }
