package server

import (
	"bytes"
	"fmt"
	"strings"

	"icash/internal/blockdev"
	"icash/internal/core"
	"icash/internal/harness"
	"icash/internal/metrics"
	"icash/internal/sim"
	"icash/internal/sim/event"
	"icash/internal/workload"
)

// SimConfig parameterizes a served simulation run.
type SimConfig struct {
	// System selects the array under the front-end (the sweep and the
	// regression tests serve ICASH).
	System harness.Kind
	// Window is the per-session in-flight window. 0 falls back to the
	// workload's QueueDepth, then to 8. Clamped to [1, MaxWindow].
	Window int
	// LinkBytesPerSec models the wire: frame bytes occupy the session's
	// uplink station for len/rate. 0 picks 1 GiB/s.
	LinkBytesPerSec int64
	// FrameOverhead is the fixed per-frame cost (framing, interrupt,
	// protocol handling). 0 picks 5us.
	FrameOverhead sim.Duration
}

// DefaultSimConfig returns the served-run defaults: the I-CASH array
// behind a 1 GiB/s link with 5us per-frame overhead.
func DefaultSimConfig() SimConfig {
	return SimConfig{System: harness.ICASH, LinkBytesPerSec: 1 << 30, FrameOverhead: 5 * sim.Microsecond}
}

// SessionReport is one session's accounting in a ServeResult.
type SessionReport struct {
	Name string
	// VM is the pinned VM index, -1 for a whole-disk session.
	VM    int
	Stats SessionStats
	// Station is the session's uplink-station accounting: utilization,
	// queue waits, and backpressure stalls of the connection itself.
	Station metrics.StationStats
	// ReadHist and WriteHist are end-to-end request latencies as the
	// client saw them: issue to reply fully received.
	ReadHist  metrics.Histogram
	WriteHist metrics.Histogram
}

// ServeResult is one served simulation run.
type ServeResult struct {
	Profile  workload.Profile
	System   harness.Kind
	Window   int
	Sessions []SessionReport

	// Ops counts client requests; Reads/Writes split them.
	Ops    int64
	Reads  int64
	Writes int64

	// ReadHist/WriteHist merge every session's end-to-end latencies.
	ReadHist  metrics.Histogram
	WriteHist metrics.Histogram

	Elapsed   sim.Duration
	ReqPerSec float64

	// Stations is the device-station accounting under the served load.
	Stations []metrics.StationStats
	// Stats is the controller's accounting (I-CASH runs only).
	Stats    *core.Stats
	Degraded bool

	// Sys keeps the system handle for inspection tools.
	Sys *harness.System
}

// Report renders the run for icash-serve and icash-inspect.
func (r *ServeResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "served %s on %s: %d sessions, window %d\n",
		r.Profile.Name, r.System, len(r.Sessions), r.Window)
	fmt.Fprintf(&b, "elapsed %v — %.1f req/s (%d ops: %d reads, %d writes)\n",
		r.Elapsed, r.ReqPerSec, r.Ops, r.Reads, r.Writes)
	if r.ReadHist.Count() > 0 {
		fmt.Fprintf(&b, "read  e2e %s\n", r.ReadHist.String())
	}
	if r.WriteHist.Count() > 0 {
		fmt.Fprintf(&b, "write e2e %s\n", r.WriteHist.String())
	}
	for _, s := range r.Sessions {
		fmt.Fprintf(&b, "session %s (vm %d): %d reqs (%d r / %d w / %d f), %s in / %s out, svc %v\n",
			s.Name, s.VM, s.Stats.Requests, s.Stats.Reads, s.Stats.Writes, s.Stats.Flushes,
			workload.ByteSize(s.Stats.BytesIn), workload.ByteSize(s.Stats.BytesOut), s.Stats.Service)
		b.WriteString(metrics.FormatStations([]metrics.StationStats{s.Station}, "  ", false))
		if s.ReadHist.Count() > 0 {
			fmt.Fprintf(&b, "  read  e2e %s\n", s.ReadHist.String())
		}
		if s.WriteHist.Count() > 0 {
			fmt.Fprintf(&b, "  write e2e %s\n", s.WriteHist.String())
		}
	}
	b.WriteString("device stations:\n")
	b.WriteString(metrics.FormatStations(r.Stations, "  ", true))
	return b.String()
}

// simBackend adapts a harness system to the session Backend, replaying
// every device walk onto the station timelines from the current frame
// arrival — the same trace-and-replay contract as the in-process
// concurrent runner. The arrival cursor is simulated bookkeeping, not
// the clock: only the event scheduler moves time.
type simBackend struct {
	sys     *harness.System
	arrival sim.Time
}

func (b *simBackend) ReadBlock(lba int64, buf []byte) (sim.Duration, error) {
	b.sys.Tracer.Begin()
	d, err := b.sys.Dev.ReadBlock(lba, buf)
	if err != nil {
		return d, err
	}
	wait := event.Replay(b.sys.Tracer.Take(), b.arrival)
	b.sys.PollDetector()
	b.arrival = b.arrival.Add(d + wait)
	return d + wait, nil
}

func (b *simBackend) WriteBlock(lba int64, buf []byte) (sim.Duration, error) {
	b.sys.Tracer.Begin()
	d, err := b.sys.Dev.WriteBlock(lba, buf)
	if err != nil {
		return d, err
	}
	wait := event.Replay(b.sys.Tracer.Take(), b.arrival)
	b.sys.PollDetector()
	b.arrival = b.arrival.Add(d + wait)
	return d + wait, nil
}

func (b *simBackend) Flush() error  { return b.sys.Flush() }
func (b *simBackend) Blocks() int64 { return b.sys.Dev.Blocks() }

// servedSession is one simulated client+session pair.
type servedSession struct {
	name    string
	vm      int
	gen     *workload.Generator
	sess    *Session
	tracker *ReplyTracker
	station *event.Server

	tokens int
	nextID uint64
	closed bool

	readLat   metrics.Histogram
	writeLat  metrics.Histogram
	pending   map[uint64][]byte // read id -> expected payload (content oracle)
	issueTime map[uint64]sim.Time
}

// RunServed drives profile p through framed sessions on the
// discrete-event engine: one session per workload stream (per VM under
// StreamPerVM), each with its own uplink station and a closed-loop
// window of in-flight requests, all composed under the system's single
// clock. Every reply is verified — CRC, id matching via the client
// tracker, and read payloads against the workload's content oracle —
// and every session ends with a graceful OpClose that drains the
// journal. The run is bit-identical for a given (profile, opts, cfg)
// regardless of the process's worker count: the engine is
// single-goroutine and owns all time.
func RunServed(p workload.Profile, opts workload.Options, cfg SimConfig) (*ServeResult, error) {
	if cfg.LinkBytesPerSec <= 0 {
		cfg.LinkBytesPerSec = 1 << 30
	}
	if cfg.FrameOverhead <= 0 {
		cfg.FrameOverhead = 5 * sim.Microsecond
	}
	window := cfg.Window
	if window <= 0 {
		window = opts.QueueDepth
	}
	if window <= 0 {
		window = 8
	}
	if window > MaxWindow {
		window = MaxWindow
	}

	sys, err := harness.Build(cfg.System, harness.ConfigForProfile(p, opts))
	if err != nil {
		return nil, err
	}
	gen := workload.NewGenerator(p, opts)
	sys.SetFill(gen.Fill)
	if err := harness.Populate(sys, gen); err != nil {
		return nil, err
	}

	streams := []*workload.Generator{gen}
	if opts.StreamPerVM {
		if vs := gen.VMStreams(); vs != nil {
			streams = vs
		}
	}
	imageBlocks := gen.ImageBlocks()

	backend := &simBackend{sys: sys}
	xfer := func(n int) sim.Duration {
		return cfg.FrameOverhead + sim.Duration(int64(n)*int64(sim.Second)/cfg.LinkBytesPerSec)
	}

	res := &ServeResult{Profile: p, System: cfg.System, Window: window, Sys: sys}
	clock := sys.Clock
	sch := event.NewScheduler(clock)
	start := clock.Now()

	sessions := make([]*servedSession, len(streams))
	for i, sgen := range streams {
		ss := &servedSession{
			name:      fmt.Sprintf("sess%d", i),
			vm:        sgen.VM(),
			gen:       sgen,
			tokens:    window,
			pending:   make(map[uint64][]byte),
			issueTime: make(map[uint64]sim.Time),
		}
		opt := SessionOptions{MaxWindow: window}
		if ss.vm >= 0 {
			first := int64(ss.vm) * imageBlocks
			vm := uint32(ss.vm)
			opt.Partition = func(got uint32) (int64, int64, bool) {
				if got != vm {
					return 0, 0, false
				}
				return first, imageBlocks, true
			}
		}
		ss.sess = NewSession(ss.name, backend, opt)
		ss.tracker = NewReplyTracker(window)
		ss.station = event.NewServer(ss.name, window)
		sessions[i] = ss

		// Handshake up front, outside the measured timeline: the
		// session must be serving before its tokens start.
		helloVM := uint32(AnyVM)
		if ss.vm >= 0 {
			helloVM = uint32(ss.vm)
		}
		out, err := ss.sess.Feed(AppendHello(nil, Hello{Version: ProtocolVersion, WantWindow: uint16(window), VM: helloVM}))
		if err != nil {
			return nil, fmt.Errorf("server: %s handshake: %w", ss.name, err)
		}
		var hd Decoder
		hd.Feed(out)
		hr, err := hd.NextHelloReply()
		if err != nil {
			return nil, fmt.Errorf("server: %s handshake reply: %w", ss.name, err)
		}
		if hr.Status != HandshakeOK {
			return nil, fmt.Errorf("server: %s handshake refused with status %d", ss.name, hr.Status)
		}
	}

	var runErr error
	fail := func(err error) {
		if runErr == nil {
			runErr = err
		}
	}

	// send frames one client request through the wire: uplink station,
	// delivery, execution against the array, reply verification, and
	// the next issue for the token that carried it.
	var send func(ss *servedSession, frame []byte, onDone func(rdone sim.Time))
	var issue func(ss *servedSession)

	send = func(ss *servedSession, frame []byte, onDone func(rdone sim.Time)) {
		arrival := clock.Now().Add(p.AppCPU)
		sys.CPU.ChargeApp(p.AppCPU)
		_, done := ss.station.Admit(arrival, xfer(len(frame)))
		sch.At(done, func() {
			if runErr != nil {
				return
			}
			// The frame has fully arrived; the array sees its blocks
			// from this instant.
			backend.arrival = done
			out, err := ss.sess.Feed(frame)
			if err != nil {
				fail(fmt.Errorf("server: %s: %w", ss.name, err))
				return
			}
			complete := backend.arrival
			replies, err := ss.tracker.Feed(out)
			if err != nil {
				fail(fmt.Errorf("server: %s: %w", ss.name, err))
				return
			}
			rdone := complete.Add(xfer(len(out)))
			for i := range replies {
				if err := ss.verify(&replies[i], rdone); err != nil {
					fail(err)
					return
				}
			}
			if rdone < clock.Now() {
				rdone = clock.Now()
			}
			sch.At(rdone, func() { onDone(rdone) })
		})
	}

	issue = func(ss *servedSession) {
		if runErr != nil {
			return
		}
		req, ok := ss.gen.Next()
		if !ok {
			ss.tokens--
			if ss.tokens > 0 || ss.closed {
				return
			}
			// Last token out: graceful shutdown. The close reply
			// acknowledges the journal drain.
			ss.closed = true
			id := ss.nextID
			ss.nextID++
			if err := ss.tracker.Issue(id, OpClose); err != nil {
				fail(fmt.Errorf("server: %s: %w", ss.name, err))
				return
			}
			frame := AppendRequest(nil, Request{Op: OpClose, ID: id})
			send(ss, frame, func(sim.Time) {})
			return
		}
		res.Ops++
		id := ss.nextID
		ss.nextID++
		op := OpRead
		if req.Write {
			op = OpWrite
		}
		if err := ss.tracker.Issue(id, op); err != nil {
			fail(fmt.Errorf("server: %s: %w", ss.name, err))
			return
		}
		ss.issueTime[id] = clock.Now()
		wire := Request{Op: op, ID: id, LBA: uint64(req.LBA), Blocks: uint32(req.Blocks)}
		if req.Write {
			res.Writes++
			// The content model advances at issue time, in stream
			// order — the same discipline as the in-process harness,
			// which is what makes the final data set byte-identical.
			payload := make([]byte, req.Blocks*blockdev.BlockSize)
			for i := 0; i < req.Blocks; i++ {
				ss.gen.WriteContent(req.LBA+int64(i), payload[i*blockdev.BlockSize:(i+1)*blockdev.BlockSize])
			}
			wire.Payload = payload
		} else {
			res.Reads++
			// Snapshot the expected content now: the session's uplink
			// is FIFO, so every write issued before this read lands
			// before it, and none issued after can overtake it.
			expect := make([]byte, req.Blocks*blockdev.BlockSize)
			for i := 0; i < req.Blocks; i++ {
				ss.gen.CurrentContent(req.LBA+int64(i), expect[i*blockdev.BlockSize:(i+1)*blockdev.BlockSize])
			}
			ss.pending[id] = expect
		}
		frame := AppendRequest(nil, wire)
		send(ss, frame, func(sim.Time) { issue(ss) })
	}

	for t := 0; t < window; t++ {
		for _, ss := range sessions {
			ss := ss
			sch.After(0, func() { issue(ss) })
		}
	}
	sch.Run()
	if runErr != nil {
		return nil, runErr
	}

	res.Elapsed = clock.Now().Sub(start)
	if secs := res.Elapsed.Seconds(); secs > 0 {
		res.ReqPerSec = float64(res.Ops) / secs
	}
	for _, ss := range sessions {
		if ss.sess.State() != StateClosed {
			return nil, fmt.Errorf("server: %s ended in state %s, want closed", ss.name, ss.sess.State())
		}
		if ss.tracker.Outstanding() != 0 {
			return nil, fmt.Errorf("server: %s ended with %d unanswered requests", ss.name, ss.tracker.Outstanding())
		}
		rep := SessionReport{
			Name:      ss.name,
			VM:        ss.vm,
			Stats:     ss.sess.Stats(),
			Station:   ss.station.Snapshot(res.Elapsed),
			ReadHist:  ss.readLat,
			WriteHist: ss.writeLat,
		}
		res.Sessions = append(res.Sessions, rep)
		res.ReadHist.Merge(&ss.readLat)
		res.WriteHist.Merge(&ss.writeLat)
	}
	for _, st := range sys.Stations {
		res.Stations = append(res.Stations, st.Snapshot(res.Elapsed))
	}
	if sys.ICASH != nil {
		st := sys.ICASH.Stats
		res.Stats = &st
		res.Degraded = sys.ICASH.Degraded()
	} else if sys.Sharded != nil {
		st := sys.Sharded.Stats()
		res.Stats = &st
		res.Degraded = sys.Sharded.Degraded()
	}
	return res, nil
}

// verify checks one completion: status, and for reads the payload
// against the workload's content oracle.
func (ss *servedSession) verify(rep *Reply, rdone sim.Time) error {
	issued, ok := ss.issueTime[rep.ID]
	if ok {
		delete(ss.issueTime, rep.ID)
		lat := rdone.Sub(issued)
		if rep.Op == OpRead {
			ss.readLat.Record(lat)
		} else if rep.Op == OpWrite {
			ss.writeLat.Record(lat)
		}
	}
	if rep.Status != StatusOK {
		return fmt.Errorf("server: %s: request %d (op %d) failed with status %d", ss.name, rep.ID, rep.Op, rep.Status)
	}
	if rep.Op == OpRead {
		expect := ss.pending[rep.ID]
		delete(ss.pending, rep.ID)
		if expect == nil {
			return fmt.Errorf("server: %s: read reply %d has no pending oracle entry", ss.name, rep.ID)
		}
		if !bytes.Equal(rep.Payload, expect) {
			return fmt.Errorf("server: %s: read %d returned content diverging from the oracle", ss.name, rep.ID)
		}
	}
	return nil
}
