package server

import (
	"fmt"
	"strings"

	"icash/internal/harness"
	"icash/internal/metrics"
	"icash/internal/workload"
)

// servePoint is one depth's pair of runs, gathered by index so the
// table renders in submission order at any worker count.
type servePoint struct {
	direct *harness.BenchmarkRun
	served *ServeResult
	err    error
}

// ServeSweep measures the cost of the wire: the RandRead
// microbenchmark on I-CASH, in-process versus served through framed
// sessions, across in-flight windows. Each depth is two independent
// simulations (direct and served), fanned across harness.Parallelism()
// workers; the table is rendered in depth order, so the report is
// byte-identical at every worker count.
func ServeSweep(depths []int, opts workload.Options) (string, error) {
	if len(depths) == 0 {
		depths = []int{1, 2, 4, 8, 16}
	}
	if opts.Scale <= 0 {
		opts.Scale = harness.QDSweepScale
	}
	if opts.MaxOps <= 0 {
		opts.MaxOps = 4000
	}
	p := workload.RandRead()
	var b strings.Builder
	fmt.Fprintf(&b, "=== serve: %s on I-CASH, in-process vs block-service (scale %.5f, %d ops) ===\n",
		p.Name, opts.Scale, opts.MaxOps)

	points := make([]servePoint, len(depths))
	// Per-point failures are kept in the point (the table renders FAILED
	// rows), so the fan-out itself never errors.
	if err := harness.ForEachPoint(len(depths), func(i int) error {
		o := opts
		o.QueueDepth = depths[i]
		pt := servePoint{}
		pt.direct, pt.err = harness.RunBenchmark(p, o, []harness.Kind{harness.ICASH})
		if pt.err == nil {
			cfg := DefaultSimConfig()
			cfg.Window = depths[i]
			pt.served, pt.err = RunServed(p, o, cfg)
		}
		points[i] = pt
		return nil
	}); err != nil {
		return "", err
	}

	var firstErr error
	for i, qd := range depths {
		pt := points[i]
		if pt.err != nil {
			if firstErr == nil {
				firstErr = pt.err
			}
			fmt.Fprintf(&b, "qd=%-3d FAILED: %v\n", qd, pt.err)
			continue
		}
		d := pt.direct.Results[harness.ICASH]
		s := pt.served
		ratio := 0.0
		if d.ReqPerSec > 0 {
			ratio = s.ReqPerSec / d.ReqPerSec
		}
		fmt.Fprintf(&b, "qd=%-3d inproc=%8.0f req/s  served=%8.0f req/s  ratio=%4.2fx  served p99 read=%v\n",
			qd, d.ReqPerSec, s.ReqPerSec, ratio, s.ReadHist.P99())
		for _, sess := range s.Sessions {
			b.WriteString(metrics.FormatStations([]metrics.StationStats{sess.Station}, "  ", true))
		}
	}
	return b.String(), firstErr
}
