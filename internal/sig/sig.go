// Package sig implements I-CASH's content sub-signatures and the Heatmap
// popularity structure (paper §4.2, Figures 4–5, Tables 1–2).
//
// Each 4 KB block is divided into 8 sub-blocks of 512 bytes. Each
// sub-block gets a 1-byte sub-signature: the sum (mod 256) of the four
// bytes at offsets 0, 16, 32 and 64 within the sub-block. The signature
// deliberately samples rather than hashes: the goal is detecting
// *similar* blocks, and a cryptographic hash would make any single-byte
// change look like a completely different block, destroying the very
// similarity signal I-CASH needs.
//
// The Heatmap is an S×Vs table of popularity counters (8×256 here). Every
// block access increments the counter for each of its 8 sub-signatures.
// A block's popularity — the sum of its sub-signature counters — captures
// both temporal locality (the same block accessed twice bumps its own
// counters) and content locality (two similar blocks bump each other's
// shared counters). The most popular blocks become reference blocks.
package sig

import "icash/internal/blockdev"

const (
	// SubBlocks is the number of sub-blocks per 4 KB block (S in the
	// paper).
	SubBlocks = 8
	// SubBlockSize is the size of one sub-block.
	SubBlockSize = blockdev.BlockSize / SubBlocks
	// Values is the number of possible sub-signature values (Vs).
	Values = 256
)

// sampleOffsets are the byte offsets within a sub-block summed into its
// sub-signature (paper §4.2: offsets 0, 16, 32 and 64).
var sampleOffsets = [4]int{0, 16, 32, 64}

// Signature is the 8-byte content signature of one block.
type Signature [SubBlocks]byte

// Compute derives the signature of a 4 KB block. It panics on a wrongly
// sized buffer; callers operate on fixed-size cache blocks.
func Compute(block []byte) Signature {
	if len(block) != blockdev.BlockSize {
		panic("sig: block must be exactly one cache block")
	}
	var s Signature
	for i := 0; i < SubBlocks; i++ {
		base := i * SubBlockSize
		var sum byte
		for _, off := range sampleOffsets {
			sum += block[base+off]
		}
		s[i] = sum
	}
	return s
}

// Heatmap is the S×Vs popularity table.
type Heatmap struct {
	pop [SubBlocks][Values]uint64
	// accesses counts signatures recorded, for decay bookkeeping.
	accesses uint64
}

// NewHeatmap returns a zeroed heatmap.
func NewHeatmap() *Heatmap { return &Heatmap{} }

// Record increments the popularity of each sub-signature of s. Called on
// every block read and write (paper §4.2).
func (h *Heatmap) Record(s Signature) {
	for i, v := range s {
		h.pop[i][v]++
	}
	h.accesses++
}

// Popularity returns the block popularity of signature s: the sum of its
// sub-signature counters (paper Table 2).
func (h *Heatmap) Popularity(s Signature) uint64 {
	var sum uint64
	for i, v := range s {
		sum += h.pop[i][v]
	}
	return sum
}

// Value returns one counter (row = sub-block index, col = signature
// value); exposed for tests and the inspection tool.
func (h *Heatmap) Value(row int, col byte) uint64 { return h.pop[row][col] }

// Accesses returns the number of Record calls.
func (h *Heatmap) Accesses() uint64 { return h.accesses }

// Decay halves every counter. Long-running systems call this
// periodically so that stale popularity does not pin yesterday's hot
// content as references forever.
func (h *Heatmap) Decay() {
	for i := range h.pop {
		for j := range h.pop[i] {
			h.pop[i][j] >>= 1
		}
	}
}

// Reset zeroes the heatmap.
func (h *Heatmap) Reset() {
	*h = Heatmap{}
}

// Distance returns the number of differing sub-signatures between a and
// b, in [0, SubBlocks]. Similarity detection treats small distances as
// likely-similar content worth delta-encoding.
func Distance(a, b Signature) int {
	n := 0
	for i := range a {
		if a[i] != b[i] {
			n++
		}
	}
	return n
}
