package sig

import (
	"testing"
	"testing/quick"

	"icash/internal/blockdev"
	"icash/internal/sim"
)

func block(fill func(i int) byte) []byte {
	b := make([]byte, blockdev.BlockSize)
	for i := range b {
		b[i] = fill(i)
	}
	return b
}

func TestComputeSampledOffsets(t *testing.T) {
	// The signature must depend exactly on offsets 0, 16, 32 and 64 of
	// each sub-block (paper §4.2).
	base := block(func(int) byte { return 0 })
	s0 := Compute(base)
	for i := 0; i < SubBlocks; i++ {
		if s0[i] != 0 {
			t.Fatalf("zero block sub-signature %d = %d", i, s0[i])
		}
	}

	// Changing a sampled byte changes that sub-signature only.
	for sub := 0; sub < SubBlocks; sub++ {
		for _, off := range []int{0, 16, 32, 64} {
			b := block(func(int) byte { return 0 })
			b[sub*SubBlockSize+off] = 7
			s := Compute(b)
			for i := 0; i < SubBlocks; i++ {
				want := byte(0)
				if i == sub {
					want = 7
				}
				if s[i] != want {
					t.Fatalf("sub %d offset %d: signature[%d] = %d, want %d", sub, off, i, s[i], want)
				}
			}
		}
	}

	// Changing a non-sampled byte changes nothing.
	b := block(func(int) byte { return 0 })
	b[5] = 99  // offset 5 is not sampled
	b[100] = 3 // offset 100 is not sampled
	if Compute(b) != s0 {
		t.Fatal("non-sampled byte affected the signature")
	}
}

func TestComputeSumModulo(t *testing.T) {
	// Sub-signature is the byte sum of the four samples (mod 256).
	b := block(func(int) byte { return 0 })
	b[0], b[16], b[32], b[64] = 200, 100, 50, 25 // sums to 375 = 119 mod 256
	s := Compute(b)
	if s[0] != byte(375%256) {
		t.Fatalf("signature[0] = %d, want %d", s[0], 375%256)
	}
}

func TestComputePanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for short block")
		}
	}()
	Compute(make([]byte, 100))
}

// TestHeatmapPaperTable1 reproduces the paper's Table 1 walk-through:
// 2 sub-blocks, 4 signature values, contents A,B,C,D with signatures
// a,b,c,d; after accesses (A,B), (C,D), (A,D), (B,D) the heatmap is
// {(2,1,1,0),(0,1,0,3)}.
func TestHeatmapPaperTable1(t *testing.T) {
	// Model the didactic example on the real 8x256 heatmap by using
	// sub-signature values 0..3 ("a".."d") on rows 0 and 1 and leaving
	// the remaining rows at signature 0.
	const a, b, c, d = 0, 1, 2, 3
	h := NewHeatmap()
	mk := func(s0, s1 byte) Signature {
		var s Signature
		s[0], s[1] = s0, s1
		return s
	}
	seq := []Signature{
		mk(a, b), // LBA1: content (A, B)
		mk(c, d), // LBA2: content (C, D)
		mk(a, d), // LBA3: content (A, D)
		mk(b, d), // LBA4: content (B, D)
	}
	for _, s := range seq {
		h.Record(s)
	}
	want0 := [4]uint64{2, 1, 1, 0}
	want1 := [4]uint64{0, 1, 0, 3}
	for v := byte(0); v < 4; v++ {
		if got := h.Value(0, v); got != want0[v] {
			t.Errorf("Heatmap[0][%c] = %d, want %d", 'a'+v, got, want0[v])
		}
		if got := h.Value(1, v); got != want1[v] {
			t.Errorf("Heatmap[1][%c] = %d, want %d", 'a'+v, got, want1[v])
		}
	}
}

// TestReferenceSelectionPaperTable2 reproduces Table 2: with the Table 1
// heatmap, block (A, D) has the highest popularity (5) and becomes the
// reference.
func TestReferenceSelectionPaperTable2(t *testing.T) {
	const a, b, c, d = 0, 1, 2, 3
	h := NewHeatmap()
	mk := func(s0, s1 byte) Signature {
		var s Signature
		s[0], s[1] = s0, s1
		return s
	}
	blocks := map[string]Signature{
		"AB": mk(a, b),
		"CD": mk(c, d),
		"AD": mk(a, d),
		"BD": mk(b, d),
	}
	for _, name := range []string{"AB", "CD", "AD", "BD"} {
		h.Record(blocks[name])
	}
	// Popularity per Table 2 — with 8 sub-blocks, rows 2..7 all record
	// signature value 0, adding a constant 4*6 = 24 to each block.
	const rowsBias = 4 * 6
	want := map[string]uint64{"AB": 3, "CD": 4, "AD": 5, "BD": 4}
	best, bestPop := "", uint64(0)
	for name, s := range blocks {
		got := h.Popularity(s) - rowsBias
		if got != want[name] {
			t.Errorf("popularity(%s) = %d, want %d", name, got, want[name])
		}
		if got > bestPop {
			best, bestPop = name, got
		}
	}
	if best != "AD" {
		t.Errorf("selected reference = %s, want AD (the paper's most popular block)", best)
	}
}

func TestHeatmapDecay(t *testing.T) {
	h := NewHeatmap()
	var s Signature
	for i := 0; i < 10; i++ {
		h.Record(s)
	}
	if h.Popularity(s) != 10*SubBlocks {
		t.Fatalf("popularity = %d", h.Popularity(s))
	}
	h.Decay()
	if h.Popularity(s) != 5*SubBlocks {
		t.Fatalf("after decay popularity = %d", h.Popularity(s))
	}
	h.Reset()
	if h.Popularity(s) != 0 || h.Accesses() != 0 {
		t.Fatal("reset did not clear the heatmap")
	}
}

func TestDistance(t *testing.T) {
	var a, b Signature
	if Distance(a, b) != 0 {
		t.Fatal("identical signatures should have distance 0")
	}
	b[0], b[7] = 1, 9
	if Distance(a, b) != 2 {
		t.Fatalf("distance = %d, want 2", Distance(a, b))
	}
	for i := range b {
		b[i] = byte(i + 1)
	}
	if Distance(a, b) != SubBlocks {
		t.Fatalf("distance = %d, want %d", Distance(a, b), SubBlocks)
	}
}

// Property: similar blocks (few changed bytes) have small signature
// distance; the signature is deterministic.
func TestSignatureProperties(t *testing.T) {
	r := sim.NewRand(3)
	f := func(seed uint64, nChanges uint8) bool {
		b := make([]byte, blockdev.BlockSize)
		sim.NewRand(seed).Bytes(b)
		s1 := Compute(b)
		if s1 != Compute(b) {
			return false // not deterministic
		}
		// Change up to nChanges bytes; distance is bounded by the number
		// of sub-blocks touched.
		touched := map[int]bool{}
		for i := 0; i < int(nChanges); i++ {
			pos := r.Intn(len(b))
			b[pos] ^= 0xA5
			touched[pos/SubBlockSize] = true
		}
		return Distance(s1, Compute(b)) <= len(touched)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
