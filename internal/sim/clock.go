// Package sim provides the deterministic simulation substrate used by
// every device model in this repository: a virtual clock measured in
// nanoseconds and a fast, seedable pseudo-random number generator.
//
// Nothing in the simulation reads wall-clock time. All latencies are
// computed by device models and accumulated on a Clock, which makes runs
// deterministic and immune to host scheduling or garbage-collection
// pauses — the main fidelity concern for a user-space block emulation.
package sim

import "fmt"

// Duration is a span of simulated time in nanoseconds. It mirrors
// time.Duration so values print naturally, but it is a distinct type to
// keep simulated time from ever mixing with wall-clock time.
type Duration int64

// Convenient units, matching time package conventions.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Microseconds returns the duration as a floating-point number of
// microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Milliseconds returns the duration as a floating-point number of
// milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// String formats the duration with an adaptive unit.
func (d Duration) String() string {
	switch {
	case d < 0:
		return "-" + (-d).String()
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.2fµs", d.Microseconds())
	case d < Second:
		return fmt.Sprintf("%.2fms", d.Milliseconds())
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

// Time is an instant on the simulated timeline, in nanoseconds since the
// start of the simulation.
type Time int64

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Clock is the simulated clock. A single Clock is shared by every
// component of one simulated machine. Clock is not safe for concurrent
// use; the simulation is single-threaded by design (determinism).
//
// Single-owner rule: exactly one goroutine — the one driving the run,
// normally via the event scheduler — may mutate a Clock over its
// lifetime (see DESIGN.md, "Clock ownership"). Builds with the
// `clockcheck` tag enforce the rule at runtime: the first mutation
// binds the clock to that goroutine and any mutation from another
// goroutine panics. Reset releases the binding, making the per-run
// hand-off between owners explicit.
type Clock struct {
	now Time
}

// NewClock returns a clock at time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current simulated instant.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d. Negative d is a programming
// error and panics: simulated time never runs backwards.
func (c *Clock) Advance(d Duration) {
	c.assertOwner()
	if d < 0 {
		panic(fmt.Sprintf("sim: clock advanced by negative duration %v", d))
	}
	c.now = c.now.Add(d)
}

// AdvanceTo moves the clock forward to instant t. If t is in the past
// the clock is unchanged (useful for "device becomes free at" logic).
func (c *Clock) AdvanceTo(t Time) {
	c.assertOwner()
	if t > c.now {
		c.now = t
	}
}

// Reset rewinds the clock to zero, for reuse across independent runs.
// Reset is the explicit per-run boundary: it also releases the clock's
// goroutine binding under the `clockcheck` tag, so the next run's
// driving goroutine (which may be a different test or worker) becomes
// the new owner on its first mutation. Only call Reset between runs,
// never while a run is in flight — in-flight durations would silently
// span the rewind. The experiment harness instead builds a fresh Clock
// per system (see harness.Build), which needs no Reset at all.
func (c *Clock) Reset() {
	c.assertOwner()
	c.now = 0
	c.releaseOwner()
}
