//go:build !clockcheck

package sim

// assertOwner is a no-op in normal builds; the `clockcheck` build tag
// replaces it with a runtime single-owner assertion.
func (c *Clock) assertOwner() {}

// releaseOwner is a no-op in normal builds.
func (c *Clock) releaseOwner() {}
