//go:build clockcheck

package sim

import (
	"bytes"
	"fmt"
	"runtime"
	"strconv"
	"sync"
)

// clockOwners maps each Clock to the goroutine that first mutated it.
// A side table (rather than a Clock field) keeps the zero-cost no-op
// path in normal builds and the Clock struct layout identical across
// build modes.
//
// This runtime assertion is one of two enforcement layers for the
// single-owner rule. The other is static: the detclock analyzer
// (internal/analysis/detclock.go, run by icash-vet / `make lint`)
// rejects any diff in which a package outside the run-driving set
// calls a mutating Clock method at all. The analyzer cannot see
// dynamic ownership hand-offs between goroutines; this assertion
// cannot see code paths tests never execute — keep both, and when the
// set of run-driving packages changes, update detclock's
// clockOwnerPkgs and DESIGN.md §10 together with this comment.
var clockOwners sync.Map // *Clock -> uint64 goroutine id

// goid parses the current goroutine's id from its stack header. Slow,
// which is fine: clockcheck is a debug build for catching concurrency
// misuse, not a production mode.
func goid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	// "goroutine 123 [running]:"
	fields := bytes.Fields(buf[:n])
	if len(fields) < 2 {
		return 0
	}
	id, err := strconv.ParseUint(string(fields[1]), 10, 64)
	if err != nil {
		return 0
	}
	return id
}

// assertOwner enforces the single-owner rule: the first mutating call
// binds the clock to the calling goroutine; any later mutation from a
// different goroutine panics with both ids.
func (c *Clock) assertOwner() {
	id := goid()
	prev, loaded := clockOwners.LoadOrStore(c, id)
	if loaded && prev.(uint64) != id {
		panic(fmt.Sprintf(
			"sim: clock %p mutated by goroutine %d but owned by goroutine %d; "+
				"a Clock has exactly one driving goroutine per run (DESIGN.md, Clock ownership)",
			c, id, prev.(uint64)))
	}
}

// releaseOwner drops the goroutine binding (called by Reset at the
// explicit per-run boundary).
func (c *Clock) releaseOwner() {
	clockOwners.Delete(c)
}
