//go:build clockcheck

package sim

import "testing"

// TestClockOwnershipAssertion verifies the clockcheck build catches a
// clock mutated from two goroutines, and that Reset hands ownership to
// the next goroutine explicitly.
func TestClockOwnershipAssertion(t *testing.T) {
	c := NewClock()
	c.Advance(10) // this goroutine becomes the owner

	panicked := make(chan bool, 1)
	go func() {
		defer func() { panicked <- recover() != nil }()
		c.Advance(1)
	}()
	if !<-panicked {
		t.Fatal("cross-goroutine clock mutation did not panic under clockcheck")
	}

	// Reset releases ownership: a new goroutine may adopt the clock.
	c.Reset()
	adopted := make(chan bool, 1)
	go func() {
		defer func() { adopted <- recover() == nil }()
		c.Advance(5)
	}()
	if !<-adopted {
		t.Fatal("clock mutation after Reset panicked; Reset must release ownership")
	}
}
