package event

import (
	"testing"

	"icash/internal/sim"
)

// TestSchedulerOrdering is the core property test: random event sets
// always dequeue in nondecreasing time, and events that share a
// timestamp dequeue in the order they were scheduled (FIFO among ties).
func TestSchedulerOrdering(t *testing.T) {
	rng := sim.NewRand(1)
	for trial := 0; trial < 200; trial++ {
		clock := sim.NewClock()
		sch := NewScheduler(clock)
		n := 1 + int(rng.Intn(64))
		type fired struct {
			at  sim.Time
			ord int
		}
		var got []fired
		// Few distinct timestamps forces many ties.
		for i := 0; i < n; i++ {
			at := sim.Time(rng.Intn(8)) * 100
			ord := i
			sch.At(at, func() { got = append(got, fired{at, ord}) })
		}
		sch.Run()
		if len(got) != n {
			t.Fatalf("trial %d: dispatched %d of %d events", trial, len(got), n)
		}
		for i := 1; i < n; i++ {
			if got[i].at < got[i-1].at {
				t.Fatalf("trial %d: time regressed: %v after %v", trial, got[i].at, got[i-1].at)
			}
			if got[i].at == got[i-1].at && got[i].ord < got[i-1].ord {
				t.Fatalf("trial %d: tie broken out of schedule order: %d after %d",
					trial, got[i].ord, got[i-1].ord)
			}
		}
	}
}

// TestSchedulerReentrant checks events scheduled from inside callbacks
// dispatch correctly, including at the current instant.
func TestSchedulerReentrant(t *testing.T) {
	clock := sim.NewClock()
	sch := NewScheduler(clock)
	var order []int
	sch.At(10, func() {
		order = append(order, 1)
		sch.After(0, func() { order = append(order, 2) }) // same instant, after existing ties
		sch.After(5, func() { order = append(order, 4) })
	})
	sch.At(10, func() { order = append(order, 3) })
	sch.Run()
	want := []int{1, 3, 2, 4}
	if len(order) != len(want) {
		t.Fatalf("dispatched %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", order, want)
		}
	}
	if clock.Now() != 15 {
		t.Fatalf("clock = %v, want 15", clock.Now())
	}
}

// TestSchedulerPastPanics verifies scheduling into the past is rejected.
func TestSchedulerPastPanics(t *testing.T) {
	clock := sim.NewClock()
	clock.AdvanceTo(100)
	sch := NewScheduler(clock)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling into the past did not panic")
		}
	}()
	sch.At(50, func() {})
}

// TestServerProperties drives a station with random arrivals and checks
// the queueing invariants: service never starts before arrival, done is
// exactly start+svc, starts are FIFO (nondecreasing), and the
// busy-until horizon never regresses.
func TestServerProperties(t *testing.T) {
	rng := sim.NewRand(2)
	for trial := 0; trial < 100; trial++ {
		s := NewServer("dev", DefaultQueueCap)
		var arrival sim.Time
		var lastStart, lastBusy sim.Time
		for i := 0; i < 500; i++ {
			arrival = arrival.Add(sim.Duration(rng.Intn(300)))
			svc := sim.Duration(rng.Intn(1000))
			start, done := s.Admit(arrival, svc)
			if start < arrival {
				t.Fatalf("trial %d op %d: start %v before arrival %v", trial, i, start, arrival)
			}
			if done != start.Add(svc) {
				t.Fatalf("trial %d op %d: done %v != start %v + svc %v", trial, i, done, start, svc)
			}
			if start < lastStart {
				t.Fatalf("trial %d op %d: FIFO violated: start %v before previous %v",
					trial, i, start, lastStart)
			}
			if s.BusyUntil() < lastBusy {
				t.Fatalf("trial %d op %d: busy-until regressed %v -> %v",
					trial, i, lastBusy, s.BusyUntil())
			}
			lastStart, lastBusy = start, s.BusyUntil()
		}
		if s.Ops != 500 {
			t.Fatalf("trial %d: ops = %d, want 500", trial, s.Ops)
		}
	}
}

// TestServerBoundedQueue checks that a full queue gates admission on the
// oldest occupant's completion rather than growing without bound.
func TestServerBoundedQueue(t *testing.T) {
	const cap = 4
	s := NewServer("dev", cap)
	// Saturate: all requests arrive at t=0, each needs 100.
	for i := 0; i < cap; i++ {
		s.Admit(0, 100)
	}
	if s.Stalls != 0 {
		t.Fatalf("stalls before queue full: %d", s.Stalls)
	}
	// Queue holds cap occupants completing at 100..400. The next arrival
	// at t=0 must wait for the oldest (t=100) to leave before admission,
	// then start when the station frees at t=400.
	start, done := s.Admit(0, 100)
	if s.Stalls != 1 {
		t.Fatalf("stalls = %d, want 1", s.Stalls)
	}
	if start != 400 || done != 500 {
		t.Fatalf("start,done = %v,%v, want 400,500", start, done)
	}
	if s.QueuePeak > cap+1 {
		t.Fatalf("queue peak %d exceeds cap+1", s.QueuePeak)
	}
	// An arrival after everything drains sees an idle station.
	start, done = s.Admit(1000, 50)
	if start != 1000 || done != 1050 {
		t.Fatalf("idle admit start,done = %v,%v, want 1000,1050", start, done)
	}
}

// TestServerParallelism is the point of the engine: two stations serve
// two simultaneous arrivals in parallel, one station serializes them.
func TestServerParallelism(t *testing.T) {
	a := NewServer("a", 0)
	b := NewServer("b", 0)
	_, doneA := a.Admit(0, 1000)
	_, doneB := b.Admit(0, 1000)
	if doneA != 1000 || doneB != 1000 {
		t.Fatalf("parallel stations: done %v,%v, want 1000,1000", doneA, doneB)
	}
	one := NewServer("one", 0)
	_, d1 := one.Admit(0, 1000)
	_, d2 := one.Admit(0, 1000)
	if d1 != 1000 || d2 != 2000 {
		t.Fatalf("single station: done %v,%v, want 1000,2000", d1, d2)
	}
}

// TestReplaySerializesWithinRequest checks a request's own segments
// never overlap (the stack walks them sequentially) while the wait
// returned excludes service time.
func TestReplaySerializesWithinRequest(t *testing.T) {
	a := NewServer("a", 0)
	b := NewServer("b", 0)
	segs := []Segment{{a, 100}, {b, 200}}
	wait := Replay(segs, 0)
	if wait != 0 {
		t.Fatalf("uncontended replay wait = %v, want 0", wait)
	}
	if a.BusyUntil() != 100 || b.BusyUntil() != 300 {
		t.Fatalf("busy-until a=%v b=%v, want 100, 300", a.BusyUntil(), b.BusyUntil())
	}
	// A second identical request arriving at 0 queues behind the first at
	// each station: a from 100, b from max(200, 300)=300.
	wait = Replay(segs, 0)
	if wait != 200 {
		t.Fatalf("contended replay wait = %v, want 200", wait)
	}
	if b.BusyUntil() != 500 {
		t.Fatalf("busy-until b=%v, want 500", b.BusyUntil())
	}
}

// TestTracerIdle verifies Note is a no-op on nil and idle tracers.
func TestTracerIdle(t *testing.T) {
	var nilT *Tracer
	nilT.Note(NewServer("x", 0), 10) // must not panic
	tr := NewTracer()
	tr.Note(NewServer("x", 0), 10) // idle: dropped
	tr.Begin()
	s := NewServer("x", 0)
	tr.Note(s, 10)
	tr.Note(nil, 10) // nil server: dropped
	segs := tr.Take()
	if len(segs) != 1 || segs[0].Server != s || segs[0].Svc != 10 {
		t.Fatalf("segments = %+v", segs)
	}
	tr.Note(s, 10) // after Take: dropped
	tr.Begin()
	if got := tr.Take(); len(got) != 0 {
		t.Fatalf("stale segments after Begin: %+v", got)
	}
}

// TestSchedulerDeterminism runs the same random schedule twice and
// requires identical dispatch sequences.
func TestSchedulerDeterminism(t *testing.T) {
	run := func() []sim.Time {
		rng := sim.NewRand(7)
		clock := sim.NewClock()
		sch := NewScheduler(clock)
		var seq []sim.Time
		for i := 0; i < 100; i++ {
			sch.At(sim.Time(rng.Intn(50)), func() {
				seq = append(seq, clock.Now())
				if rng.Intn(2) == 0 {
					sch.After(sim.Duration(rng.Intn(20)), func() {
						seq = append(seq, clock.Now())
					})
				}
			})
		}
		sch.Run()
		return seq
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("dispatch %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}
