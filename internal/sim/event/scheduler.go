// Package event provides the discrete-event concurrency engine: a
// deterministic scheduler ordering timestamped events on the simulated
// timeline, service stations ("servers") that model per-device queueing
// with a busy-until horizon and a bounded FIFO queue, and request
// tracing that maps a synchronous walk through the device stack onto
// overlapping station timelines.
//
// The engine is what lets a 4-disk RAID0 array genuinely serve four
// seeks in parallel, an SSD overlap channel reads with HDD log appends,
// and five VM streams interleave by virtual arrival time — while
// remaining bit-for-bit deterministic: everything runs on one
// goroutine, events with equal timestamps dequeue in schedule order
// (stable tie-breaking by sequence number), and no wall-clock or map
// iteration order ever leaks into results.
package event

import (
	"fmt"

	"icash/internal/sim"
)

// event is one scheduled callback. seq breaks timestamp ties in
// schedule order, which is what makes the engine deterministic under
// simultaneous completions.
type event struct {
	at  sim.Time
	seq uint64
	fn  func()
}

// before reports heap ordering: earlier time first, then earlier
// schedule order among equal timestamps.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// Scheduler is a deterministic discrete-event scheduler: a binary
// min-heap of events keyed by (time, sequence). Popping an event
// advances the shared simulation clock to the event's timestamp, so
// simulated time is always the time of the event being processed.
//
// Scheduler is not safe for concurrent use; the whole simulation is
// single-goroutine by design (see the sim.Clock single-owner rule).
type Scheduler struct {
	clock *sim.Clock
	heap  []event
	seq   uint64

	// Dispatched counts events processed (diagnostics).
	Dispatched int64
}

// NewScheduler returns an empty scheduler driving clock.
func NewScheduler(clock *sim.Clock) *Scheduler {
	return &Scheduler{clock: clock}
}

// Now returns the current simulated instant.
func (s *Scheduler) Now() sim.Time { return s.clock.Now() }

// Len returns the number of pending events.
func (s *Scheduler) Len() int { return len(s.heap) }

// At schedules fn at instant t. Scheduling into the past is a
// programming error: the clock never runs backwards.
func (s *Scheduler) At(t sim.Time, fn func()) {
	if t < s.clock.Now() {
		panic(fmt.Sprintf("event: scheduling at %d before now %d", t, s.clock.Now()))
	}
	s.seq++
	s.heap = append(s.heap, event{at: t, seq: s.seq, fn: fn})
	s.up(len(s.heap) - 1)
}

// After schedules fn d after the current instant.
func (s *Scheduler) After(d sim.Duration, fn func()) {
	if d < 0 {
		panic("event: scheduling with negative delay")
	}
	s.At(s.clock.Now().Add(d), fn)
}

// Step pops and runs the earliest pending event, advancing the clock to
// its timestamp. It returns false when no events remain.
func (s *Scheduler) Step() bool {
	if len(s.heap) == 0 {
		return false
	}
	e := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heap = s.heap[:last]
	if last > 0 {
		s.down(0)
	}
	s.clock.AdvanceTo(e.at)
	s.Dispatched++
	e.fn()
	return true
}

// Run processes events until the heap drains. Event callbacks may
// schedule further events.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// up restores the heap property after appending at index i.
func (s *Scheduler) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.heap[i].before(&s.heap[parent]) {
			return
		}
		s.heap[i], s.heap[parent] = s.heap[parent], s.heap[i]
		i = parent
	}
}

// down restores the heap property after replacing the root.
func (s *Scheduler) down(i int) {
	n := len(s.heap)
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && s.heap[l].before(&s.heap[least]) {
			least = l
		}
		if r < n && s.heap[r].before(&s.heap[least]) {
			least = r
		}
		if least == i {
			return
		}
		s.heap[i], s.heap[least] = s.heap[least], s.heap[i]
		i = least
	}
}
