package event

import (
	"fmt"

	"icash/internal/metrics"
	"icash/internal/sim"
)

// DefaultQueueCap is the per-station queue bound used by the harness:
// the 32-entry NCQ window of a SATA device.
const DefaultQueueCap = 32

// Server models one service station of a device: an SSD channel, an HDD
// actuator, or one member of a RAID stripe. A station serves requests
// one at a time in FIFO order; concurrency across stations is what the
// engine exploits.
//
// The station keeps a busy-until horizon (the instant its last admitted
// request completes) and a bounded queue: a request arriving when the
// queue is full cannot even be enqueued until an occupant completes —
// the backpressure a full NCQ slot table exerts on the host.
type Server struct {
	name     string
	queueCap int

	busyUntil sim.Time
	// occupants holds the completion instants of admitted requests that
	// may still be in the station (queued or in service), oldest first.
	// Admission drains completed entries, so its length is the queue
	// occupancy seen by the next arrival.
	occupants []sim.Time

	// Ops counts admitted requests.
	Ops int64
	// BusyTime is accumulated service time (utilization numerator).
	BusyTime sim.Duration
	// Wait is the queue-wait distribution (time between arrival and
	// service start).
	Wait metrics.LatencyRecorder
	// QueuePeak is the largest queue occupancy observed at admission.
	QueuePeak int
	// Stalls counts admissions that found the bounded queue full and had
	// to wait for a slot.
	Stalls int64
}

// NewServer returns a station with the given queue bound. queueCap <= 0
// means unbounded.
func NewServer(name string, queueCap int) *Server {
	return &Server{name: name, queueCap: queueCap}
}

// Name returns the station label.
func (s *Server) Name() string { return s.name }

// BusyUntil returns the instant the station's last admitted request
// completes. It never regresses.
func (s *Server) BusyUntil() sim.Time { return s.busyUntil }

// Admit schedules one request with service demand svc arriving at
// arrival. It returns the instant service starts (after any queue wait)
// and the completion instant. FIFO order holds: completions are
// admitted in nondecreasing order of (arrival, admission sequence), and
// the busy-until horizon never regresses.
func (s *Server) Admit(arrival sim.Time, svc sim.Duration) (start, done sim.Time) {
	if svc < 0 {
		panic(fmt.Sprintf("event: %s: negative service time %v", s.name, svc))
	}
	// Free the slots of requests that completed before this arrival.
	n := 0
	for n < len(s.occupants) && s.occupants[n] <= arrival {
		n++
	}
	if n > 0 {
		s.occupants = s.occupants[:copy(s.occupants, s.occupants[n:])]
	}
	gate := arrival
	if s.queueCap > 0 && len(s.occupants) >= s.queueCap {
		// Queue full: admission blocks until the oldest occupant leaves.
		gate = s.occupants[0]
		s.occupants = s.occupants[:copy(s.occupants, s.occupants[1:])]
		s.Stalls++
	}
	start = gate
	if s.busyUntil > start {
		start = s.busyUntil
	}
	done = start.Add(svc)
	s.busyUntil = done
	s.occupants = append(s.occupants, done)
	if len(s.occupants) > s.QueuePeak {
		s.QueuePeak = len(s.occupants)
	}
	s.Ops++
	s.BusyTime += svc
	s.Wait.Record(start.Sub(arrival))
	return start, done
}

// Snapshot renders the station's accounting over an observation window.
func (s *Server) Snapshot(elapsed sim.Duration) metrics.StationStats {
	st := metrics.StationStats{
		Name:      s.name,
		Ops:       s.Ops,
		Busy:      s.BusyTime,
		QueuePeak: s.QueuePeak,
		Stalls:    s.Stalls,
		Wait:      s.Wait,
	}
	if elapsed > 0 {
		st.Utilization = float64(s.BusyTime) / float64(elapsed)
		if st.Utilization > 1 {
			st.Utilization = 1
		}
	}
	return st
}

// ResetStats zeroes the accumulated statistics. The busy-until horizon
// and queue occupancy are preserved: they are simulation state, not
// accounting.
func (s *Server) ResetStats() {
	s.Ops = 0
	s.BusyTime = 0
	s.Wait = metrics.LatencyRecorder{}
	s.QueuePeak = 0
	s.Stalls = 0
}
