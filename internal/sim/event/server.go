package event

import (
	"fmt"

	"icash/internal/metrics"
	"icash/internal/sim"
)

// DefaultQueueCap is the per-station queue bound used by the harness:
// the 32-entry NCQ window of a SATA device.
const DefaultQueueCap = 32

// Server models one service station of a device: an SSD channel, an HDD
// actuator, or one member of a RAID stripe. A station serves requests
// one at a time in FIFO order; concurrency across stations is what the
// engine exploits.
//
// The station keeps a busy-until horizon (the instant its last admitted
// request completes) and a bounded queue: a request arriving when the
// queue is full cannot even be enqueued until an occupant completes —
// the backpressure a full NCQ slot table exerts on the host.
type Server struct {
	name     string
	queueCap int

	busyUntil sim.Time
	// occupants holds the completion instants of admitted requests that
	// may still be in the station (queued or in service), oldest first.
	// Admission drains completed entries, so its length is the queue
	// occupancy seen by the next arrival.
	occupants []sim.Time

	// shaper, when set, rewrites a request's service time at the moment
	// service starts (fail-slow fault plans). It must be pure: same
	// (start, svc) in, same shaped time out. A shaped request occupies
	// the station for the inflated time, so later arrivals queue behind
	// it — the starvation a genuinely slow device inflicts.
	shaper func(start sim.Time, svc sim.Duration) sim.Duration
	// observer, when set, sees every admitted request's (shaped) service
	// time — the slow-device detector's feed.
	observer func(svc sim.Duration)

	// Ops counts admitted requests.
	Ops int64
	// BusyTime is accumulated service time (utilization numerator).
	BusyTime sim.Duration
	// Wait is the queue-wait distribution (time between arrival and
	// service start).
	Wait metrics.LatencyRecorder
	// Service is the per-station service-time distribution after
	// shaping, with tail-percentile resolution.
	Service metrics.Histogram
	// SlowOps counts requests whose service time the shaper inflated;
	// SlowTime is the total time it injected.
	SlowOps  int64
	SlowTime sim.Duration
	// QueuePeak is the largest queue occupancy observed at admission.
	QueuePeak int
	// Stalls counts admissions that found the bounded queue full and had
	// to wait for a slot.
	Stalls int64
}

// NewServer returns a station with the given queue bound. queueCap <= 0
// means unbounded.
func NewServer(name string, queueCap int) *Server {
	return &Server{name: name, queueCap: queueCap}
}

// Name returns the station label.
func (s *Server) Name() string { return s.name }

// SetShaper installs (or clears, with nil) the service-time shaper.
func (s *Server) SetShaper(f func(start sim.Time, svc sim.Duration) sim.Duration) {
	s.shaper = f
}

// SetObserver installs (or clears, with nil) the service-time observer.
func (s *Server) SetObserver(f func(svc sim.Duration)) { s.observer = f }

// BusyUntil returns the instant the station's last admitted request
// completes. It never regresses.
func (s *Server) BusyUntil() sim.Time { return s.busyUntil }

// Admit schedules one request with service demand svc arriving at
// arrival. It returns the instant service starts (after any queue wait)
// and the completion instant. FIFO order holds: completions are
// admitted in nondecreasing order of (arrival, admission sequence), and
// the busy-until horizon never regresses.
func (s *Server) Admit(arrival sim.Time, svc sim.Duration) (start, done sim.Time) {
	if svc < 0 {
		panic(fmt.Sprintf("event: %s: negative service time %v", s.name, svc))
	}
	// Free the slots of requests that completed before this arrival.
	n := 0
	for n < len(s.occupants) && s.occupants[n] <= arrival {
		n++
	}
	if n > 0 {
		s.occupants = s.occupants[:copy(s.occupants, s.occupants[n:])]
	}
	gate := arrival
	if s.queueCap > 0 && len(s.occupants) >= s.queueCap {
		// Queue full: admission blocks until the oldest occupant leaves.
		gate = s.occupants[0]
		s.occupants = s.occupants[:copy(s.occupants, s.occupants[1:])]
		s.Stalls++
	}
	start = gate
	if s.busyUntil > start {
		start = s.busyUntil
	}
	// Fail-slow shaping happens at service start: the slow request holds
	// the station for its inflated time and everything behind it waits.
	if s.shaper != nil {
		shaped := s.shaper(start, svc)
		if shaped > svc {
			s.SlowOps++
			s.SlowTime += shaped - svc
			svc = shaped
		}
	}
	done = start.Add(svc)
	s.busyUntil = done
	s.occupants = append(s.occupants, done)
	if len(s.occupants) > s.QueuePeak {
		s.QueuePeak = len(s.occupants)
	}
	s.Ops++
	s.BusyTime += svc
	s.Wait.Record(start.Sub(arrival))
	s.Service.Record(svc)
	if s.observer != nil {
		s.observer(svc)
	}
	return start, done
}

// Snapshot renders the station's accounting over an observation window.
func (s *Server) Snapshot(elapsed sim.Duration) metrics.StationStats {
	st := metrics.StationStats{
		Name:      s.name,
		Ops:       s.Ops,
		Busy:      s.BusyTime,
		QueuePeak: s.QueuePeak,
		Stalls:    s.Stalls,
		Wait:      s.Wait,
		Service:   s.Service,
		SlowOps:   s.SlowOps,
		SlowTime:  s.SlowTime,
	}
	if elapsed > 0 {
		st.Utilization = float64(s.BusyTime) / float64(elapsed)
		if st.Utilization > 1 {
			st.Utilization = 1
		}
	}
	return st
}

// ResetStats zeroes the accumulated statistics. The busy-until horizon
// and queue occupancy are preserved: they are simulation state, not
// accounting.
func (s *Server) ResetStats() {
	s.Ops = 0
	s.BusyTime = 0
	s.Wait = metrics.LatencyRecorder{}
	s.Service = metrics.Histogram{}
	s.SlowOps = 0
	s.SlowTime = 0
	s.QueuePeak = 0
	s.Stalls = 0
}
