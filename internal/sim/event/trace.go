package event

import "icash/internal/sim"

// Segment is one station visit recorded during a synchronous walk
// through the device stack: the station touched and its service demand.
type Segment struct {
	Server *Server
	Svc    sim.Duration
}

// Tracer collects the station visits of one in-flight request. The
// harness begins a trace, calls the (synchronous, single-goroutine)
// device stack, then takes the segments and replays them onto the
// station timelines to discover queueing delays.
//
// Devices hold a *Tracer and call Note from their service paths; a nil
// tracer or an inactive one makes Note a no-op, so standalone device
// use (unit tests, tools) is unaffected.
type Tracer struct {
	active bool
	segs   []Segment
}

// NewTracer returns an idle tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Begin starts collecting segments for one request, discarding any
// previous trace.
func (t *Tracer) Begin() {
	t.active = true
	t.segs = t.segs[:0]
}

// Note records one station visit. Safe on a nil or idle tracer.
func (t *Tracer) Note(s *Server, svc sim.Duration) {
	if t == nil || !t.active || s == nil {
		return
	}
	t.segs = append(t.segs, Segment{Server: s, Svc: svc})
}

// Take ends the trace and returns the collected segments. The slice is
// valid until the next Begin.
func (t *Tracer) Take() []Segment {
	t.active = false
	return t.segs
}

// Replay admits the traced segments of one request, in order, onto
// their stations starting at arrival, and returns the total queueing
// delay the request experienced beyond its service demands. Each
// segment begins no earlier than the previous one completed (the stack
// walked them sequentially), so intra-request dependencies serialize
// while independent requests overlap across stations.
func Replay(segs []Segment, arrival sim.Time) sim.Duration {
	cursor := arrival
	var wait sim.Duration
	for i := range segs {
		start, done := segs[i].Server.Admit(cursor, segs[i].Svc)
		wait += start.Sub(cursor)
		cursor = done
	}
	return wait
}
