package sim

import "math"

// Rand is a small, fast, deterministic pseudo-random number generator
// (splitmix64 seeding an xoshiro256** core). Every workload generator and
// device model that needs randomness takes a *Rand so that a single seed
// reproduces an entire experiment bit-for-bit.
//
// The implementation is self-contained rather than math/rand so that the
// stream is stable across Go releases.
type Rand struct {
	s [4]uint64
}

// NewRand returns a generator seeded from seed via splitmix64, which
// guarantees a well-mixed non-zero state for any seed including zero.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state from seed.
func (r *Rand) Seed(seed uint64) {
	x := seed
	next := func() uint64 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Bytes fills b with random bytes.
func (r *Rand) Bytes(b []byte) {
	i := 0
	for ; i+8 <= len(b); i += 8 {
		v := r.Uint64()
		b[i] = byte(v)
		b[i+1] = byte(v >> 8)
		b[i+2] = byte(v >> 16)
		b[i+3] = byte(v >> 24)
		b[i+4] = byte(v >> 32)
		b[i+5] = byte(v >> 40)
		b[i+6] = byte(v >> 48)
		b[i+7] = byte(v >> 56)
	}
	if i < len(b) {
		v := r.Uint64()
		for ; i < len(b); i++ {
			b[i] = byte(v)
			v >>= 8
		}
	}
}

// Zipf draws from a bounded Zipf-like distribution over [0, n) with
// exponent s > 0 using rejection-inversion. Larger s skews harder toward
// small values. It is the standard model for block-level temporal
// locality in storage workloads.
type Zipf struct {
	r    *Rand
	n    int
	s    float64
	hx0  float64
	hn   float64
	c    float64 // normalizing constant piece
	imax float64
}

// NewZipf returns a Zipf sampler over [0, n) with skew s (s != 1 handled
// via the generalized harmonic H function approximation).
func NewZipf(r *Rand, n int, s float64) *Zipf {
	if n <= 0 {
		panic("sim: NewZipf with non-positive n")
	}
	if s <= 0 {
		panic("sim: NewZipf with non-positive skew")
	}
	z := &Zipf{r: r, n: n, s: s}
	z.imax = float64(n)
	z.hx0 = z.h(0.5) - 1
	z.hn = z.h(z.imax + 0.5)
	z.c = z.hx0 - z.hn
	return z
}

// h is the integral of x^-s (the continuous analogue of the harmonic
// series), used by rejection-inversion sampling.
func (z *Zipf) h(x float64) float64 {
	if z.s == 1 {
		return -math.Log(x)
	}
	return math.Pow(x, 1-z.s) / (z.s - 1)
}

// hinv inverts h.
func (z *Zipf) hinv(x float64) float64 {
	if z.s == 1 {
		return math.Exp(-x)
	}
	return math.Pow((z.s-1)*x, 1/(1-z.s))
}

// Next draws the next sample in [0, n).
func (z *Zipf) Next() int {
	for {
		u := z.hx0 - z.r.Float64()*z.c
		x := z.hinv(u)
		k := int(x + 0.5)
		if k < 1 {
			k = 1
		}
		if k > z.n {
			k = z.n
		}
		// Accept with probability proportional to the true mass.
		if float64(k)-x <= 0.5 || z.h(float64(k)+0.5)-z.h(float64(k)-0.5) >= z.hx0-u {
			return k - 1
		}
	}
}
