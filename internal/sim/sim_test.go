package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClock(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatal("new clock must start at zero")
	}
	c.Advance(5 * Millisecond)
	c.Advance(2 * Microsecond)
	if c.Now() != Time(5*Millisecond+2*Microsecond) {
		t.Fatalf("now = %d", c.Now())
	}
	c.AdvanceTo(Time(3 * Millisecond)) // in the past: no-op
	if c.Now() != Time(5*Millisecond+2*Microsecond) {
		t.Fatal("AdvanceTo moved the clock backwards")
	}
	c.AdvanceTo(Time(10 * Millisecond))
	if c.Now() != Time(10*Millisecond) {
		t.Fatal("AdvanceTo did not move forward")
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("reset failed")
	}
}

func TestClockNegativePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative advance must panic")
		}
	}()
	NewClock().Advance(-1)
}

func TestDurationString(t *testing.T) {
	cases := map[Duration]string{
		500 * Nanosecond:   "500ns",
		2 * Microsecond:    "2.00µs",
		1500 * Microsecond: "1.50ms",
		2 * Second:         "2.000s",
	}
	for d, want := range cases {
		if got := d.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(d), got, want)
		}
	}
	if (-2 * Microsecond).String() != "-2.00µs" {
		t.Errorf("negative formatting: %q", (-2 * Microsecond).String())
	}
	if (1500 * Microsecond).Milliseconds() != 1.5 {
		t.Error("Milliseconds conversion")
	}
	if (2 * Second).Seconds() != 2 {
		t.Error("Seconds conversion")
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce the same stream")
		}
	}
	c := NewRand(43)
	same := 0
	a.Seed(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestRandUniformity(t *testing.T) {
	r := NewRand(7)
	const buckets, n = 16, 160000
	var counts [buckets]int
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Fatalf("bucket %d: %d, expected ~%.0f", i, c, want)
		}
	}
}

func TestRandBytes(t *testing.T) {
	r := NewRand(9)
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 100} {
		b := make([]byte, n)
		r.Bytes(b)
		if n >= 16 {
			allZero := true
			for _, x := range b {
				if x != 0 {
					allZero = false
					break
				}
			}
			if allZero {
				t.Fatalf("Bytes(%d) produced all zeros", n)
			}
		}
	}
}

func TestRandPerm(t *testing.T) {
	r := NewRand(11)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatal("not a permutation")
		}
		seen[v] = true
	}
}

func TestZipfSkewOrdering(t *testing.T) {
	// Higher skew concentrates more mass on the top ranks.
	mass := func(s float64) float64 {
		r := NewRand(1)
		z := NewZipf(r, 1000, s)
		top := 0
		const n = 50000
		for i := 0; i < n; i++ {
			if z.Next() < 100 {
				top++
			}
		}
		return float64(top) / n
	}
	m08, m12 := mass(0.8), mass(1.2)
	if m12 <= m08 {
		t.Fatalf("skew 1.2 top mass %.3f not above skew 0.8 %.3f", m12, m08)
	}
	if m12 < 0.5 {
		t.Fatalf("skew 1.2 top-10%% mass %.3f too small", m12)
	}
}

func TestZipfBounds(t *testing.T) {
	f := func(seed uint64, nRaw uint16, sRaw uint8) bool {
		n := int(nRaw)%5000 + 1
		s := 0.2 + float64(sRaw)/100 // 0.2 .. 2.75
		z := NewZipf(NewRand(seed), n, s)
		for i := 0; i < 100; i++ {
			v := z.Next()
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewZipf(NewRand(1), 0, 1) },
		func() { NewZipf(NewRand(1), 10, 0) },
		func() { NewRand(1).Intn(0) },
		func() { NewRand(1).Int63n(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
