package ssd

// clockCache is a CLOCK (second-chance) approximation of LRU over int64
// keys. The SSD model uses it for the device DRAM read cache and the FTL
// mapping cache; it tracks presence only, never data.
type clockCache struct {
	capacity int
	slots    []clockSlot
	index    map[int64]int
	hand     int
}

type clockSlot struct {
	key  int64
	ref  bool
	used bool
}

func newClockCache(capacity int) *clockCache {
	if capacity <= 0 {
		panic("ssd: clockCache capacity must be positive")
	}
	return &clockCache{
		capacity: capacity,
		slots:    make([]clockSlot, capacity),
		index:    make(map[int64]int, capacity),
	}
}

// touch looks up key, inserting it on miss (evicting by CLOCK if full).
// It reports whether the key was already present.
func (c *clockCache) touch(key int64) bool {
	if i, ok := c.index[key]; ok {
		c.slots[i].ref = true
		return true
	}
	// Find a victim slot.
	for {
		s := &c.slots[c.hand]
		if !s.used {
			s.key, s.used, s.ref = key, true, true
			c.index[key] = c.hand
			c.hand = (c.hand + 1) % c.capacity
			return false
		}
		if s.ref {
			s.ref = false
			c.hand = (c.hand + 1) % c.capacity
			continue
		}
		delete(c.index, s.key)
		s.key, s.ref = key, true
		c.index[key] = c.hand
		c.hand = (c.hand + 1) % c.capacity
		return false
	}
}

// contains reports presence without updating recency.
func (c *clockCache) contains(key int64) bool {
	_, ok := c.index[key]
	return ok
}

// len returns the number of cached keys.
func (c *clockCache) len() int { return len(c.index) }
