// Package ssd models a NAND-flash solid-state drive at the fidelity the
// I-CASH evaluation depends on: fast random reads, slower programs, very
// slow erases, a page-mapped FTL with garbage collection and wear
// leveling, an internal DRAM read cache and mapping cache, and erase
// counters that bound device lifetime.
//
// The model reproduces the asymmetries the paper exploits:
//
//   - random reads are cheap (tens of microseconds), and a *small* hot
//     footprint is cheaper still because it stays in the device's DRAM
//     cache and mapping cache (the paper measures ~15 µs difference
//     between a 10 MB and a 1 GB working set on the Fusion-io, §5.1);
//   - random writes are expensive and become more expensive as free
//     space fragments, because garbage collection must relocate valid
//     pages and erase blocks;
//   - every erase wears the device; Table 6 of the paper counts writes
//     to the SSD precisely because fewer writes mean longer lifetime.
package ssd

import (
	"fmt"

	"icash/internal/blockdev"
	"icash/internal/sim"
	"icash/internal/sim/event"
)

// Config describes the simulated device. The zero value is not usable;
// start from DefaultConfig.
type Config struct {
	// CapacityBlocks is the host-visible capacity in 4 KB blocks.
	CapacityBlocks int64
	// OverProvision is the fraction of extra physical flash beyond the
	// host-visible capacity (SLC enterprise drives: ~0.2).
	OverProvision float64
	// PagesPerBlock is the number of 4 KB pages per erase block.
	PagesPerBlock int
	// Channels is the number of independent flash channels; programs
	// interleave across channels, dividing effective program latency.
	Channels int

	// PageReadLatency is the raw media read time for one page.
	PageReadLatency sim.Duration
	// PageProgramLatency is the raw media program time for one page.
	PageProgramLatency sim.Duration
	// EraseLatency is the block erase time.
	EraseLatency sim.Duration
	// TransferLatency is the bus/controller time per page transfer.
	TransferLatency sim.Duration

	// ReadCacheBlocks is the device DRAM read cache size in blocks
	// (0 disables it). Hits cost CacheHitLatency instead of a media read.
	ReadCacheBlocks int
	// CacheHitLatency is the service time for a device-cache hit.
	CacheHitLatency sim.Duration
	// MapCacheEntries is the FTL mapping-cache size in pages (0 means
	// the whole map is cached). Misses add MapMissPenalty.
	MapCacheEntries int
	// MapMissPenalty is the extra time to fetch a mapping entry from
	// flash on a map-cache miss.
	MapMissPenalty sim.Duration

	// GCThresholdBlocks triggers garbage collection when the free-block
	// pool drops to this size.
	GCThresholdBlocks int
	// EraseLimit is the per-block erase endurance (SLC ~100k).
	EraseLimit int
	// WearWeight blends wear into GC victim selection: 0 = pure greedy
	// (fewest valid pages), larger values prefer low-erase-count blocks.
	WearWeight float64
	// RetireWornBlocks removes erase blocks from circulation once they
	// exceed EraseLimit instead of merely counting them. A device whose
	// free pool runs dry then fails writes with blockdev.ErrMedia — the
	// end-of-life behaviour the fault-injection tests exercise.
	RetireWornBlocks bool
}

// DefaultConfig returns an SLC device in the spirit of the paper's
// Fusion-io ioDrive 80G SLC, scaled to the requested host capacity. The
// device DRAM resources are absolute, not scaled: the paper measures
// that a ~10 MB hot footprint runs ~15 µs faster than sweeps of a 1 GB
// footprint (§5.1) — i.e. the device's hot mapping window covers a few
// thousand pages regardless of capacity. A working set inside that
// window runs at "peak speed"; sweeps pay the mapping-fetch penalty.
func DefaultConfig(capacityBlocks int64) Config {
	readCache := 256 // 1 MB device data cache
	mapCache := 2560 // hot mapping window ≈ 10 MB of pages (§5.1)
	return Config{
		CapacityBlocks:     capacityBlocks,
		OverProvision:      0.20,
		PagesPerBlock:      64,
		Channels:           4,
		PageReadLatency:    25 * sim.Microsecond,
		PageProgramLatency: 200 * sim.Microsecond,
		EraseLatency:       1500 * sim.Microsecond,
		TransferLatency:    10 * sim.Microsecond,
		ReadCacheBlocks:    readCache,
		CacheHitLatency:    5 * sim.Microsecond,
		MapCacheEntries:    mapCache,
		MapMissPenalty:     15 * sim.Microsecond,
		GCThresholdBlocks:  8,
		EraseLimit:         100000,
		WearWeight:         0.1,
	}
}

// pageLoc addresses a physical page.
type pageLoc struct {
	block int32
	page  int32
}

const invalidPage = int64(-1)

// flashBlock is one erase block's physical state.
type flashBlock struct {
	pages  []int64 // logical page stored in each physical page, or invalidPage
	next   int     // next free page index within the block
	valid  int     // count of valid pages
	erases int
}

// Device is the simulated SSD. It implements blockdev.Device. Device is
// not safe for concurrent use (the simulation is single-threaded).
type Device struct {
	cfg Config

	// Logical content. Content correctness is independent of physical
	// placement; the FTL below models only timing and wear.
	data map[int64][]byte
	fill blockdev.FillFunc

	// FTL state.
	blocks    []flashBlock
	mapping   []pageLoc // logical page -> physical location
	mapped    []bool
	freeList  []int32 // erase-block indexes with no valid data, erased
	active    int32   // block currently filled by host writes
	gcActive  int32   // dedicated destination block for GC relocation
	freePages int64

	readCache *clockCache // device DRAM read cache over logical pages
	mapCache  *clockCache // FTL mapping cache over logical pages

	// tracer/channels connect the device to the concurrency engine:
	// each request notes its service time against one channel station
	// (lba-striped). Nil when uninstrumented (standalone use).
	tracer   *event.Tracer
	channels []*event.Server

	// Stats is externally visible accounting.
	Stats Stats
}

// Stats aggregates device activity for the experiment harness.
type Stats struct {
	blockdev.Stats
	// HostWrites counts write requests issued by the host: the paper's
	// Table 6 metric.
	HostWrites int64
	// PagesProgrammed counts physical page programs including GC
	// relocation; PagesProgrammed/HostWrites is write amplification.
	PagesProgrammed int64
	// PagesRelocated counts GC copies.
	PagesRelocated int64
	// Erases counts block erases.
	Erases int64
	// GCRuns counts garbage-collection invocations.
	GCRuns int64
	// GCTime is total time spent inside garbage collection (charged to
	// the triggering host writes).
	GCTime sim.Duration
	// ReadCacheHits counts device-DRAM cache hits.
	ReadCacheHits int64
	// MapMisses counts FTL mapping-cache misses.
	MapMisses int64
	// WornBlocks counts erase blocks that exceeded the erase limit.
	WornBlocks int64
	// RetiredBlocks counts worn erase blocks removed from circulation
	// (RetireWornBlocks).
	RetiredBlocks int64
}

// Accumulate adds every counter of o into s — the aggregation the
// element array and the sharded harness use to report one device-level
// figure across per-element / per-shard SSDs. Write amplification is
// recomputed from the summed programs and host writes, so it stays a
// ratio, never an average of averages.
func (s *Stats) Accumulate(o *Stats) {
	s.Stats.Add(o.Stats)
	s.HostWrites += o.HostWrites
	s.PagesProgrammed += o.PagesProgrammed
	s.PagesRelocated += o.PagesRelocated
	s.Erases += o.Erases
	s.GCRuns += o.GCRuns
	s.GCTime += o.GCTime
	s.ReadCacheHits += o.ReadCacheHits
	s.MapMisses += o.MapMisses
	s.WornBlocks += o.WornBlocks
	s.RetiredBlocks += o.RetiredBlocks
}

// WriteAmplification returns physical programs per host write.
func (s *Stats) WriteAmplification() float64 {
	if s.HostWrites == 0 {
		return 0
	}
	return float64(s.PagesProgrammed) / float64(s.HostWrites)
}

// New builds a device from cfg.
func New(cfg Config) *Device {
	if cfg.CapacityBlocks <= 0 {
		panic("ssd: non-positive capacity")
	}
	if cfg.PagesPerBlock <= 0 {
		cfg.PagesPerBlock = 64
	}
	if cfg.Channels <= 0 {
		cfg.Channels = 1
	}
	physPages := cfg.CapacityBlocks + int64(float64(cfg.CapacityBlocks)*cfg.OverProvision)
	nBlocks := int(physPages/int64(cfg.PagesPerBlock)) + 3
	// The GC threshold must be achievable: a small (scaled-down) device
	// cannot keep 8 blocks free and still hold its logical capacity.
	maxThreshold := (nBlocks - int(cfg.CapacityBlocks/int64(cfg.PagesPerBlock))) / 2
	if maxThreshold < 1 {
		maxThreshold = 1
	}
	if cfg.GCThresholdBlocks > maxThreshold {
		cfg.GCThresholdBlocks = maxThreshold
	}
	if cfg.GCThresholdBlocks < 1 {
		cfg.GCThresholdBlocks = 1
	}
	d := &Device{
		cfg:     cfg,
		data:    make(map[int64][]byte),
		blocks:  make([]flashBlock, nBlocks),
		mapping: make([]pageLoc, cfg.CapacityBlocks),
		mapped:  make([]bool, cfg.CapacityBlocks),
	}
	for i := range d.blocks {
		d.blocks[i].pages = make([]int64, cfg.PagesPerBlock)
		for j := range d.blocks[i].pages {
			d.blocks[i].pages[j] = invalidPage
		}
	}
	d.freeList = make([]int32, 0, nBlocks)
	for i := nBlocks - 1; i >= 2; i-- {
		d.freeList = append(d.freeList, int32(i))
	}
	d.active = 0
	d.gcActive = 1
	d.freePages = int64(nBlocks) * int64(cfg.PagesPerBlock)
	if cfg.ReadCacheBlocks > 0 {
		d.readCache = newClockCache(cfg.ReadCacheBlocks)
	}
	if cfg.MapCacheEntries > 0 {
		d.mapCache = newClockCache(cfg.MapCacheEntries)
	}
	return d
}

// Blocks returns the host-visible capacity in blocks.
func (d *Device) Blocks() int64 { return d.cfg.CapacityBlocks }

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// mapLookupCost models the FTL mapping-cache: hot logical pages resolve
// instantly, cold ones pay a flash map fetch. This is what makes a small
// hot footprint (I-CASH's reference set) faster than sweeping the whole
// device (pure-SSD baseline).
func (d *Device) mapLookupCost(lba int64) sim.Duration {
	if d.mapCache == nil {
		return 0
	}
	if d.mapCache.touch(lba) {
		return 0
	}
	d.Stats.MapMisses++
	return d.cfg.MapMissPenalty
}

// ReadBlock services a host read.
func (d *Device) ReadBlock(lba int64, buf []byte) (sim.Duration, error) {
	if err := blockdev.CheckRange(lba, d.cfg.CapacityBlocks); err != nil {
		return 0, err
	}
	if err := blockdev.CheckBuffer(buf); err != nil {
		return 0, err
	}
	if b, ok := d.data[lba]; ok {
		copy(buf, b)
	} else if d.fill != nil {
		d.fill(lba, buf)
	} else {
		for i := range buf {
			buf[i] = 0
		}
	}
	var lat sim.Duration
	if d.readCache != nil && d.readCache.touch(lba) {
		d.Stats.ReadCacheHits++
		lat = d.cfg.CacheHitLatency
	} else {
		lat = d.mapLookupCost(lba) + d.cfg.PageReadLatency + d.cfg.TransferLatency
	}
	d.Stats.NoteRead(blockdev.BlockSize, lat)
	d.note(lba, lat)
	return lat, nil
}

// WriteBlock services a host write: allocate a flash page, program it,
// invalidate the old mapping, and run garbage collection if the free
// pool is exhausted. GC time is charged to the triggering write, which
// is exactly the latency spike behaviour real drives exhibit.
func (d *Device) WriteBlock(lba int64, buf []byte) (sim.Duration, error) {
	if err := blockdev.CheckRange(lba, d.cfg.CapacityBlocks); err != nil {
		return 0, err
	}
	if err := blockdev.CheckBuffer(buf); err != nil {
		return 0, err
	}
	d.Stats.HostWrites++
	lat := d.mapLookupCost(lba) + d.cfg.TransferLatency

	// Program into the active block first; channel interleaving divides
	// the program time seen by a stream of writes. When the device is
	// out of programmable flash (worn blocks retired) the write fails as
	// a program failure before any content or mapping state changes.
	loc, gcTime, err := d.allocPage(lba)
	if err != nil {
		lat += gcTime
		d.Stats.NoteWrite(blockdev.BlockSize, lat)
		d.note(lba, lat)
		return lat, err
	}

	// Invalidate the previous physical page.
	if d.mapped[lba] {
		old := d.mapping[lba]
		blk := &d.blocks[old.block]
		if blk.pages[old.page] == lba {
			blk.pages[old.page] = invalidPage
			blk.valid--
		}
	}
	b, ok := d.data[lba]
	if !ok {
		b = make([]byte, blockdev.BlockSize)
		d.data[lba] = b
	}
	copy(b, buf)
	d.mapping[lba] = loc
	d.mapped[lba] = true
	d.Stats.PagesProgrammed++
	lat += d.cfg.PageProgramLatency/sim.Duration(d.cfg.Channels) + gcTime

	if d.readCache != nil {
		d.readCache.touch(lba) // write allocates into device cache
	}
	d.Stats.NoteWrite(blockdev.BlockSize, lat)
	d.note(lba, lat)
	return lat, nil
}

// note records one serviced request against the lba's channel station.
func (d *Device) note(lba int64, lat sim.Duration) {
	if d.tracer == nil || len(d.channels) == 0 {
		return
	}
	d.tracer.Note(d.channels[lba%int64(len(d.channels))], lat)
}

// Instrument connects the device to the concurrency engine: requests
// note their service time against one of chans, striped by LBA (an
// approximation of channel-level parallelism inside the drive). A nil
// tracer detaches the device.
func (d *Device) Instrument(tr *event.Tracer, chans []*event.Server) {
	d.tracer = tr
	d.channels = chans
}

// allocPage takes the next free physical page, opening a new active
// block (and garbage-collecting) as needed, and records the logical
// owner. It returns the location and any GC time incurred. With worn
// blocks retired a device can genuinely run out of programmable flash;
// that surfaces as blockdev.ErrMedia.
func (d *Device) allocPage(lba int64) (pageLoc, sim.Duration, error) {
	var gcTime sim.Duration
	blk := &d.blocks[d.active]
	if blk.next >= d.cfg.PagesPerBlock {
		gcTime = d.maybeGC()
		next, err := d.popFree()
		if err != nil {
			return pageLoc{}, gcTime, err
		}
		d.active = next
		blk = &d.blocks[d.active]
	}
	loc := pageLoc{block: d.active, page: int32(blk.next)}
	blk.pages[blk.next] = lba
	blk.next++
	blk.valid++
	d.freePages--
	return loc, gcTime, nil
}

// placeGC puts one relocated page into the GC destination block, which
// is guaranteed to have room by collectOne's accounting.
func (d *Device) placeGC(lba int64) {
	dst := &d.blocks[d.gcActive]
	if dst.next >= d.cfg.PagesPerBlock {
		panic("ssd: GC destination overflow")
	}
	d.mapping[lba] = pageLoc{block: d.gcActive, page: int32(dst.next)}
	dst.pages[dst.next] = lba
	dst.next++
	dst.valid++
	d.freePages--
}

// popFree removes one erased block from the free list. An empty list
// means the device has no programmable flash left — either genuinely
// over-committed or worn down to nothing with RetireWornBlocks — and
// the caller's write must fail rather than corrupt FTL state.
func (d *Device) popFree() (int32, error) {
	if len(d.freeList) == 0 {
		return 0, fmt.Errorf("ssd: out of programmable flash blocks: %w", blockdev.ErrMedia)
	}
	idx := d.freeList[len(d.freeList)-1]
	d.freeList = d.freeList[:len(d.freeList)-1]
	return idx, nil
}

// maybeGC reclaims space until the free pool is above threshold,
// returning total simulated time spent. GC relocates into its own
// dedicated destination block (never the host free pool), so it always
// makes page-level progress; the loop stops when several consecutive
// collections fail to grow the free pool — the device is then at its
// live-data ceiling.
func (d *Device) maybeGC() sim.Duration {
	var total sim.Duration
	stalls := 0
	for len(d.freeList) <= d.cfg.GCThresholdBlocks && stalls < 8 {
		before := len(d.freeList)
		t, ok := d.collectOne()
		if !ok {
			break
		}
		total += t
		if len(d.freeList) > before {
			stalls = 0
		} else {
			stalls++
		}
	}
	return total
}

// collectOne picks a victim block by cost-benefit (fewest valid pages,
// biased toward low wear), relocates its valid pages into the dedicated
// GC destination block, and erases it. When the destination fills
// mid-relocation, the remaining victim pages are staged in the
// controller's copyback buffer, the victim is erased, and the erased
// victim becomes the new destination — so GC never draws from the host
// free pool. The victim joins the free pool only when its valid pages
// fit the current destination entirely.
func (d *Device) collectOne() (sim.Duration, bool) {
	victim := int32(-1)
	best := float64(1 << 30)
	for i := range d.blocks {
		blk := &d.blocks[i]
		if int32(i) == d.active || int32(i) == d.gcActive || blk.next < d.cfg.PagesPerBlock {
			continue // only full, non-destination blocks are candidates
		}
		score := float64(blk.valid) + d.cfg.WearWeight*float64(blk.erases)
		if score < best {
			best = score
			victim = int32(i)
		}
	}
	if victim < 0 {
		return 0, false
	}
	d.Stats.GCRuns++
	blk := &d.blocks[victim]
	var t sim.Duration

	// Gather the victim's valid logical pages (copyback staging).
	live := make([]int64, 0, blk.valid)
	for p := 0; p < d.cfg.PagesPerBlock; p++ {
		if lba := blk.pages[p]; lba != invalidPage {
			live = append(live, lba)
			blk.pages[p] = invalidPage
		}
	}
	blk.valid = 0
	t += sim.Duration(len(live)) * d.cfg.PageReadLatency

	// Erase the victim now; its space is available for relocation.
	blk.next = 0
	blk.erases++
	d.Stats.Erases++
	if blk.erases == d.cfg.EraseLimit {
		d.Stats.WornBlocks++
	}
	d.freePages += int64(d.cfg.PagesPerBlock)
	t += d.cfg.EraseLatency

	dstFree := d.cfg.PagesPerBlock - d.blocks[d.gcActive].next
	freedWhole := len(live) <= dstFree
	for _, lba := range live {
		if d.blocks[d.gcActive].next >= d.cfg.PagesPerBlock {
			// Destination full: the erased victim takes over.
			d.gcActive = victim
		}
		d.placeGC(lba)
		t += d.cfg.PageProgramLatency / sim.Duration(d.cfg.Channels)
		d.Stats.PagesRelocated++
		d.Stats.PagesProgrammed++
	}
	if freedWhole {
		if d.cfg.RetireWornBlocks && blk.erases > d.cfg.EraseLimit {
			// End of endurance: the block leaves circulation instead of
			// rejoining the free pool.
			d.Stats.RetiredBlocks++
			d.freePages -= int64(d.cfg.PagesPerBlock)
		} else {
			// Victim fully drained into the old destination: it is free.
			d.freeList = append(d.freeList, victim)
		}
	}
	d.Stats.GCTime += t
	return t, true
}

// EraseCounts returns a copy of per-block erase counters (wear profile).
func (d *Device) EraseCounts() []int {
	out := make([]int, len(d.blocks))
	for i := range d.blocks {
		out[i] = d.blocks[i].erases
	}
	return out
}

// MaxErase returns the highest per-block erase count.
func (d *Device) MaxErase() int {
	max := 0
	for i := range d.blocks {
		if d.blocks[i].erases > max {
			max = d.blocks[i].erases
		}
	}
	return max
}

// CheckInvariants validates internal FTL consistency; tests call it
// after randomized operation sequences.
func (d *Device) CheckInvariants() error {
	// Every mapped logical page must point at a physical page that
	// claims it, and valid counts must agree.
	validByBlock := make([]int, len(d.blocks))
	for lba := int64(0); lba < d.cfg.CapacityBlocks; lba++ {
		if !d.mapped[lba] {
			continue
		}
		loc := d.mapping[lba]
		if int(loc.block) >= len(d.blocks) {
			return fmt.Errorf("ssd: lba %d maps to bad block %d", lba, loc.block)
		}
		got := d.blocks[loc.block].pages[loc.page]
		if got != lba {
			return fmt.Errorf("ssd: lba %d maps to page owned by %d", lba, got)
		}
		validByBlock[loc.block]++
	}
	for i := range d.blocks {
		if d.blocks[i].valid != validByBlock[i] {
			return fmt.Errorf("ssd: block %d valid=%d, actual=%d", i, d.blocks[i].valid, validByBlock[i])
		}
		if d.blocks[i].valid > d.blocks[i].next {
			return fmt.Errorf("ssd: block %d valid=%d exceeds fill=%d", i, d.blocks[i].valid, d.blocks[i].next)
		}
	}
	return nil
}

var _ blockdev.Device = (*Device)(nil)

// Preload installs content at lba without timing, wear or statistics
// (a factory-imaged drive). The page is mapped physically so that later
// invalidations keep FTL invariants intact.
func (d *Device) Preload(lba int64, content []byte) error {
	if err := blockdev.CheckRange(lba, d.cfg.CapacityBlocks); err != nil {
		return err
	}
	if err := blockdev.CheckBuffer(content); err != nil {
		return err
	}
	b, ok := d.data[lba]
	if !ok {
		b = make([]byte, blockdev.BlockSize)
		d.data[lba] = b
	}
	copy(b, content)
	if !d.mapped[lba] {
		// Quietly place the page; GC cost rules still apply later.
		loc, _, err := d.allocPage(lba)
		if err != nil {
			return err
		}
		d.mapping[lba] = loc
		d.mapped[lba] = true
	}
	return nil
}

var _ blockdev.Preloader = (*Device)(nil)

// Corrupt flips one bit of the stored content at lba, bypassing timing,
// wear and statistics: the drive keeps serving the damaged bytes with
// no error — a seeded silent bit-rot for integrity tests and demos.
// Unwritten blocks are materialized from the fill oracle first so the
// corruption is visible against the expected content.
func (d *Device) Corrupt(lba int64, bit int) error {
	if err := blockdev.CheckRange(lba, d.cfg.CapacityBlocks); err != nil {
		return err
	}
	b, ok := d.data[lba]
	if !ok {
		b = make([]byte, blockdev.BlockSize)
		if d.fill != nil {
			d.fill(lba, b)
		}
		d.data[lba] = b
	}
	n := len(b) * 8
	bit = ((bit % n) + n) % n
	b[bit/8] ^= 1 << uint(bit%8)
	return nil
}

// SetFill installs the initial-content oracle for unwritten blocks (the
// drive ships pre-imaged with the data set).
func (d *Device) SetFill(f blockdev.FillFunc) { d.fill = f }

var _ blockdev.Filler = (*Device)(nil)

// ResetStats zeroes the accumulated statistics (wear counters on the
// blocks themselves are preserved). Harnesses call it after an
// unmeasured populate phase.
func (d *Device) ResetStats() { d.Stats = Stats{} }
