package ssd

import (
	"bytes"
	"testing"
	"testing/quick"

	"icash/internal/blockdev"
	"icash/internal/sim"
)

func smallConfig(capacity int64) Config {
	cfg := DefaultConfig(capacity)
	cfg.ReadCacheBlocks = 16
	cfg.MapCacheEntries = 32
	return cfg
}

func TestReadWriteRoundTrip(t *testing.T) {
	d := New(smallConfig(256))
	buf := make([]byte, blockdev.BlockSize)
	out := make([]byte, blockdev.BlockSize)
	r := sim.NewRand(1)
	model := map[int64][]byte{}
	for i := 0; i < 2000; i++ {
		lba := int64(r.Intn(256))
		if r.Float64() < 0.6 {
			r.Bytes(buf)
			if _, err := d.WriteBlock(lba, buf); err != nil {
				t.Fatalf("write: %v", err)
			}
			model[lba] = append([]byte(nil), buf...)
		} else {
			if _, err := d.ReadBlock(lba, out); err != nil {
				t.Fatalf("read: %v", err)
			}
			want := model[lba]
			if want == nil {
				want = make([]byte, blockdev.BlockSize)
			}
			if !bytes.Equal(out, want) {
				t.Fatalf("lba %d content mismatch", lba)
			}
		}
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGCReclaimsAndWears(t *testing.T) {
	d := New(smallConfig(512))
	buf := make([]byte, blockdev.BlockSize)
	r := sim.NewRand(2)
	// Overwrite heavily to force garbage collection.
	for i := 0; i < 20000; i++ {
		r.Bytes(buf[:64])
		if _, err := d.WriteBlock(int64(r.Intn(512)), buf); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if d.Stats.GCRuns == 0 || d.Stats.Erases == 0 {
		t.Fatalf("expected GC under overwrite load: runs=%d erases=%d", d.Stats.GCRuns, d.Stats.Erases)
	}
	if d.Stats.PagesRelocated == 0 {
		t.Fatal("expected GC relocations")
	}
	if wa := d.Stats.WriteAmplification(); wa < 1 {
		t.Fatalf("write amplification %f < 1", wa)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWearLeveling(t *testing.T) {
	// With wear-aware victim selection, erase counts should not diverge
	// wildly even under a skewed overwrite pattern.
	cfg := smallConfig(512)
	cfg.WearWeight = 0.5
	d := New(cfg)
	buf := make([]byte, blockdev.BlockSize)
	r := sim.NewRand(3)
	for i := 0; i < 30000; i++ {
		// 90% of writes hit 10% of the space.
		var lba int64
		if r.Float64() < 0.9 {
			lba = int64(r.Intn(51))
		} else {
			lba = int64(r.Intn(512))
		}
		r.Bytes(buf[:32])
		if _, err := d.WriteBlock(lba, buf); err != nil {
			t.Fatal(err)
		}
	}
	counts := d.EraseCounts()
	max, sum, n := 0, 0, 0
	for _, c := range counts {
		if c > max {
			max = c
		}
		sum += c
		n++
	}
	mean := float64(sum) / float64(n)
	if mean > 0 && float64(max) > 8*mean {
		t.Fatalf("wear imbalance: max=%d mean=%.1f", max, mean)
	}
	if d.MaxErase() != max {
		t.Fatalf("MaxErase = %d, want %d", d.MaxErase(), max)
	}
}

func TestLatencyOrdering(t *testing.T) {
	// A cached read must be cheaper than a cold read; a write must cost
	// at least the interleaved program time.
	cfg := smallConfig(1024)
	d := New(cfg)
	buf := make([]byte, blockdev.BlockSize)
	wLat, err := d.WriteBlock(7, buf)
	if err != nil {
		t.Fatal(err)
	}
	if wLat < cfg.PageProgramLatency/sim.Duration(cfg.Channels) {
		t.Fatalf("write latency %v below program time", wLat)
	}
	hot, _ := d.ReadBlock(7, buf) // written block is device-cached
	// Touch many other blocks to evict lba 7 from the read cache.
	for i := int64(100); i < 100+int64(cfg.ReadCacheBlocks)*2; i++ {
		d.ReadBlock(i, buf)
	}
	cold, _ := d.ReadBlock(7, buf)
	if hot >= cold {
		t.Fatalf("cached read %v should be faster than cold read %v", hot, cold)
	}
}

func TestMapCachePenalty(t *testing.T) {
	cfg := smallConfig(4096)
	cfg.ReadCacheBlocks = 8
	cfg.MapCacheEntries = 64
	d := New(cfg)
	buf := make([]byte, blockdev.BlockSize)
	// Sweep a footprint much larger than the map cache.
	for i := int64(0); i < 4096; i++ {
		d.ReadBlock(i, buf)
	}
	if d.Stats.MapMisses == 0 {
		t.Fatal("sweeping a large footprint should miss the map cache")
	}
}

func TestBoundsAndPreload(t *testing.T) {
	d := New(smallConfig(64))
	buf := make([]byte, blockdev.BlockSize)
	if _, err := d.ReadBlock(-1, buf); err == nil {
		t.Error("negative lba must fail")
	}
	if _, err := d.WriteBlock(64, buf); err == nil {
		t.Error("out-of-range lba must fail")
	}
	if _, err := d.ReadBlock(0, buf[:10]); err == nil {
		t.Error("short buffer must fail")
	}
	want := make([]byte, blockdev.BlockSize)
	want[0] = 42
	if err := d.Preload(5, want); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadBlock(5, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, want) {
		t.Fatal("preload content mismatch")
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFillOracle(t *testing.T) {
	d := New(smallConfig(64))
	d.SetFill(func(lba int64, buf []byte) {
		for i := range buf {
			buf[i] = byte(lba)
		}
	})
	buf := make([]byte, blockdev.BlockSize)
	d.ReadBlock(9, buf)
	if buf[0] != 9 || buf[4095] != 9 {
		t.Fatal("fill oracle not used for unwritten block")
	}
	// A write overrides the oracle.
	w := make([]byte, blockdev.BlockSize)
	w[0] = 77
	d.WriteBlock(9, w)
	d.ReadBlock(9, buf)
	if buf[0] != 77 {
		t.Fatal("written content must override the oracle")
	}
}

// Property: after any random operation sequence, FTL invariants hold
// and content matches a shadow model.
func TestFTLInvariantsProperty(t *testing.T) {
	f := func(seed uint64, opsRaw uint16) bool {
		ops := int(opsRaw)%3000 + 100
		d := New(smallConfig(128))
		r := sim.NewRand(seed)
		model := map[int64]byte{}
		buf := make([]byte, blockdev.BlockSize)
		for i := 0; i < ops; i++ {
			lba := int64(r.Intn(128))
			if r.Float64() < 0.7 {
				tag := byte(r.Uint64())
				for j := range buf {
					buf[j] = tag
				}
				if _, err := d.WriteBlock(lba, buf); err != nil {
					return false
				}
				model[lba] = tag
			} else {
				if _, err := d.ReadBlock(lba, buf); err != nil {
					return false
				}
				if buf[0] != model[lba] {
					return false
				}
			}
		}
		return d.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestClockCache(t *testing.T) {
	c := newClockCache(3)
	keys := []int64{1, 2, 3}
	for _, k := range keys {
		if c.touch(k) {
			t.Fatalf("key %d should miss on first touch", k)
		}
	}
	for _, k := range keys {
		if !c.touch(k) {
			t.Fatalf("key %d should hit", k)
		}
	}
	c.touch(4) // evicts something
	if c.len() != 3 {
		t.Fatalf("len = %d, want 3", c.len())
	}
	if !c.contains(4) {
		t.Fatal("newly inserted key must be present")
	}
}
