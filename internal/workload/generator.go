package workload

import (
	"fmt"

	"icash/internal/blockdev"
	"icash/internal/core"
	"icash/internal/sim"
)

// Request is one block-level I/O in the generated stream.
type Request struct {
	// Write distinguishes writes from reads.
	Write bool
	// LBA is the starting block address.
	LBA int64
	// Blocks is the request length in blocks (>= 1).
	Blocks int
}

// Options scales a profile to simulation size.
type Options struct {
	// Scale multiplies the data-set size and request counts (e.g. 1/64
	// of the paper's sizes). Zero picks DefaultScale.
	Scale float64
	// MaxOps caps the generated request count after scaling (0 = no cap).
	MaxOps int
	// Seed makes the stream reproducible.
	Seed uint64
	// QueueDepth is the number of outstanding requests each stream keeps
	// in flight (closed-loop issue). 0 or 1 selects the classic serial
	// path: one request at a time.
	QueueDepth int
	// StreamPerVM splits a multi-VM profile into one independent
	// generator per VM, interleaved by virtual arrival time, instead of
	// a single serialized stream (Fig 15/16 as genuinely concurrent
	// runs). Ignored for single-VM profiles.
	StreamPerVM bool
	// TuneICASH, when run through the experiment harness, overrides
	// I-CASH controller parameters (ablation studies). Ignored by the
	// generator itself.
	TuneICASH func(*core.Config)
}

// DefaultScale keeps the largest benchmark around a hundred thousand
// requests and data sets in the hundreds of megabytes, preserving the
// SSD:data-set ratio the paper uses.
const DefaultScale = 1.0 / 64

// Generator produces the deterministic request + content stream for one
// profile. It also serves as the content oracle for the initial data
// set (install via blockdev.Filler on every device under test).
//
// A Generator is not safe for concurrent use.
type Generator struct {
	p    Profile
	opts Options
	rng  *sim.Rand
	zipf *sim.Zipf

	dataBlocks  int64
	imageBlocks int64 // per-VM image size (== dataBlocks when VMs <= 1)
	numOps      int
	emitted     int

	// vmPin restricts the stream to one VM's image partition (per-VM
	// stream mode); -1 means requests roam over all VMs.
	vmPin int
	// opsOverride, when positive, replaces the scaled request count
	// (per-VM streams split the profile's total among themselves).
	opsOverride int

	// Sequential-run state.
	nextSeq   int64
	seqWrite  bool
	seqRemain int

	// version counts writes per block: the content of block b after its
	// n-th write is a deterministic function of (seed, b, n).
	version map[int64]uint32
	// freshAnchor records, per block, the most recent write version that
	// replaced the whole content (FreshWriteFrac); later versions mutate
	// from that anchor instead of the original base.
	freshAnchor map[int64]uint32

	// familyBase caches the base content of each family.
	familyBase map[int][]byte
}

// NewGenerator builds a generator for p with the given options.
func NewGenerator(p Profile, opts Options) *Generator {
	if opts.Scale <= 0 {
		opts.Scale = DefaultScale
	}
	g := &Generator{p: p, opts: opts, vmPin: -1}
	g.Reset()
	return g
}

// Profile returns the underlying benchmark profile.
func (g *Generator) Profile() Profile { return g.p }

// Options returns the scaling options the generator was built with.
func (g *Generator) Options() Options { return g.opts }

// VM returns the pinned VM index of a per-VM stream, or -1 for a
// whole-data-set generator.
func (g *Generator) VM() int { return g.vmPin }

// VMStreams splits the generator into one independent stream per VM,
// sharing the content model (same seed, same families, same initial
// data set) but drawing requests only from their own image partition.
// The profile's request budget is divided among the streams. Returns
// nil for single-VM profiles.
func (g *Generator) VMStreams() []*Generator {
	vms := g.p.VMs
	if vms <= 1 {
		return nil
	}
	total := g.numOps
	streams := make([]*Generator, vms)
	for i := 0; i < vms; i++ {
		share := total / vms
		if i < total%vms {
			share++
		}
		s := &Generator{p: g.p, opts: g.opts, vmPin: i, opsOverride: share}
		s.Reset()
		streams[i] = s
	}
	return streams
}

// DataBlocks returns the scaled data-set size in blocks.
func (g *Generator) DataBlocks() int64 { return g.dataBlocks }

// ImageBlocks returns the per-VM image size in blocks (the whole data
// set for single-machine benchmarks).
func (g *Generator) ImageBlocks() int64 { return g.imageBlocks }

// NumOps returns the scaled request count.
func (g *Generator) NumOps() int { return g.numOps }

// Emitted returns how many requests have been produced since Reset.
func (g *Generator) Emitted() int { return g.emitted }

// Reset rewinds the stream to the beginning.
func (g *Generator) Reset() {
	p, opts := g.p, g.opts
	dataBlocks := int64(float64(p.DataBlocks()) * opts.Scale)
	if dataBlocks < 64 {
		dataBlocks = 64
	}
	vms := p.VMs
	if vms < 1 {
		vms = 1
	}
	imageBlocks := dataBlocks / int64(vms)
	if imageBlocks < 16 {
		imageBlocks = 16
	}
	dataBlocks = imageBlocks * int64(vms)

	numOps := int(float64(p.PaperOps()) * opts.Scale)
	if numOps < 1000 {
		numOps = 1000
	}
	if opts.MaxOps > 0 && numOps > opts.MaxOps {
		numOps = opts.MaxOps
	}
	if g.opsOverride > 0 {
		numOps = g.opsOverride
	}

	// A pinned per-VM stream salts the request RNG so the VMs issue
	// distinct streams; the content model (family bases, block content)
	// keys only off opts.Seed and stays shared across streams.
	rngSeed := opts.Seed ^ 0x1CA5BEEF
	if g.vmPin >= 0 {
		rngSeed ^= uint64(g.vmPin+1) * 0x9E3779B97F4A7C15
	}
	g.rng = sim.NewRand(rngSeed)
	g.dataBlocks = dataBlocks
	g.imageBlocks = imageBlocks
	g.numOps = numOps
	g.emitted = 0
	g.nextSeq = -1
	g.seqRemain = 0
	g.version = make(map[int64]uint32)
	g.freshAnchor = make(map[int64]uint32)
	g.familyBase = make(map[int][]byte)
	if p.Skew > 0 {
		g.zipf = sim.NewZipf(g.rng, int(imageBlocks), p.Skew)
	} else {
		g.zipf = nil
	}
}

// reqBlocks samples a request length around the profile's mean using a
// geometric-ish distribution clamped to [1, 64].
func (g *Generator) reqBlocks(avgBytes int) int {
	mean := float64(avgBytes) / blockdev.BlockSize
	if mean <= 1 {
		return 1
	}
	// Geometric with the right mean: P(continue) = 1 - 1/mean.
	n := 1
	pCont := 1 - 1/mean
	for n < 64 && g.rng.Float64() < pCont {
		n++
	}
	return n
}

// pickLBA chooses a request start address honouring VM partitioning,
// temporal skew and the data-set bound.
func (g *Generator) pickLBA(length int) int64 {
	var off int64
	if g.zipf != nil {
		// Zipf rank -> block offset. Ranks are scattered in 8-block
		// clusters: hot blocks are spread across the disk (no false
		// physical locality) while multi-block requests starting at a
		// hot block still touch warm neighbours.
		const cluster = 8
		rank := int64(g.zipf.Next())
		nClusters := (g.imageBlocks + cluster - 1) / cluster
		c := (rank / cluster * 2654435761) % nClusters
		off = (c*cluster + rank%cluster) % g.imageBlocks
	} else {
		off = g.rng.Int63n(g.imageBlocks)
	}
	if off+int64(length) > g.imageBlocks {
		off = g.imageBlocks - int64(length)
		if off < 0 {
			off = 0
		}
	}
	vm := int64(0)
	if g.vmPin >= 0 {
		vm = int64(g.vmPin)
	} else if g.p.VMs > 1 {
		vm = int64(g.rng.Intn(g.p.VMs))
	}
	return vm*g.imageBlocks + off
}

// seqBound is the exclusive LBA limit for sequential runs: a pinned
// stream stays inside its own VM image.
func (g *Generator) seqBound() int64 {
	if g.vmPin >= 0 {
		return int64(g.vmPin+1) * g.imageBlocks
	}
	return g.dataBlocks
}

// Next returns the next request, or ok == false at end of stream.
func (g *Generator) Next() (Request, bool) {
	if g.emitted >= g.numOps {
		return Request{}, false
	}
	g.emitted++

	isWrite := g.rng.Float64() >= g.p.ReadFraction()
	var req Request
	if g.seqRemain > 0 && g.nextSeq >= 0 {
		// Continue the sequential run.
		length := g.reqBlocks(g.avgBytes(g.seqWrite))
		if g.nextSeq+int64(length) > g.seqBound() {
			g.seqRemain = 0
			return g.randomRequest(isWrite), true
		}
		req = Request{Write: g.seqWrite, LBA: g.nextSeq, Blocks: length}
		g.nextSeq += int64(length)
		g.seqRemain--
		return req, true
	}
	if g.rng.Float64() < g.seqStartProb() {
		// Start a new sequential run of 4-32 requests.
		g.seqWrite = isWrite
		g.seqRemain = 4 + g.rng.Intn(28)
		length := g.reqBlocks(g.avgBytes(isWrite))
		lba := g.pickLBA(length)
		g.nextSeq = lba + int64(length)
		return Request{Write: isWrite, LBA: lba, Blocks: length}, true
	}
	return g.randomRequest(isWrite), true
}

// seqStartProb converts the profile's "fraction of requests that are
// sequential" into the probability of *starting* a run, accounting for
// the mean run length, so SeqFraction means what it says.
func (g *Generator) seqStartProb() float64 {
	const meanRun = 17.5 // runs are 4-32 requests, uniform
	f := g.p.SeqFraction
	if f <= 0 {
		return 0
	}
	if f >= 1 {
		return 1
	}
	return f / (meanRun * (1 - f))
}

func (g *Generator) avgBytes(write bool) int {
	if write {
		return g.p.AvgWriteBytes
	}
	return g.p.AvgReadBytes
}

func (g *Generator) randomRequest(write bool) Request {
	length := g.reqBlocks(g.avgBytes(write))
	return Request{Write: write, LBA: g.pickLBA(length), Blocks: length}
}

// ---------------------------------------------------------------------
// Content model
// ---------------------------------------------------------------------

// familyOf maps a block to its content family. Blocks of one family
// share a base pattern; VM clones share families by image offset.
func (g *Generator) familyOf(lba int64) int {
	off := lba % g.imageBlocks
	fams := g.p.Families
	if fams <= 0 {
		fams = 1
	}
	return int((uint64(off) * 0x9E3779B97F4A7C15 >> 32) % uint64(fams))
}

// base returns (caching) the family base content.
func (g *Generator) base(family int) []byte {
	if b, ok := g.familyBase[family]; ok {
		return b
	}
	b := make([]byte, blockdev.BlockSize)
	r := sim.NewRand(g.opts.Seed*31 + uint64(family)*977 + 5)
	r.Bytes(b)
	g.familyBase[family] = b
	return b
}

// mutate overwrites frac of buf's bytes. Changes come in contiguous
// runs of 16-64 bytes, the way real updates modify fields and records
// rather than isolated bytes. Positions come from posSeed and values
// from valSeed: passing a stable posSeed across write versions models
// the fact that successive writes to a block keep rewriting the same
// hot fields — which is what keeps the paper's measured deltas small
// (5-20%% of bits) even after many writes.
func mutate(buf []byte, posSeed, valSeed uint64, frac float64) {
	if frac <= 0 {
		return
	}
	n := int(frac * float64(len(buf)))
	if n <= 0 {
		n = 1
	}
	pr := sim.NewRand(posSeed)
	vr := sim.NewRand(valSeed)
	for n > 0 {
		run := 16 + pr.Intn(49)
		if run > n {
			run = n
		}
		pos := pr.Intn(len(buf))
		for i := 0; i < run; i++ {
			buf[(pos+i)%len(buf)] = byte(vr.Uint64())
		}
		n -= run
	}
}

// isFresh reports whether the version-th write to lba replaces the
// block with entirely new content.
func (g *Generator) isFresh(lba int64, version uint32) bool {
	if g.p.FreshWriteFrac <= 0 || version == 0 {
		return false
	}
	h := (uint64(lba)*0x9E3779B97F4A7C15 + uint64(version)*0xD1B54A32D192ED03) ^ g.opts.Seed
	h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
	return float64(h>>11)/(1<<53) < g.p.FreshWriteFrac
}

// contentAt writes the content of lba at the given write-version into
// buf. Version 0 is the initial data set. anchor is the most recent
// fresh-write version at or below version (0 = never).
func (g *Generator) contentAt(lba int64, version, anchor uint32, buf []byte) {
	off := lba % g.imageBlocks
	vm := lba / g.imageBlocks
	if anchor > 0 {
		// The block was wholly rewritten at the anchor version: new,
		// family-independent content.
		r := sim.NewRand(g.opts.Seed ^ uint64(lba)*6700417 ^ uint64(anchor)*7879)
		r.Bytes(buf)
	} else {
		fam := g.familyOf(lba)
		copy(buf, g.base(fam))
		// Per-block personalization: all but DupFrac of blocks differ
		// from the family base by MutFrac of bytes.
		perBlock := sim.NewRand(g.opts.Seed ^ uint64(off)*0x9E3779B97F4A7C15)
		if perBlock.Float64() >= g.p.DupFrac {
			seed := g.opts.Seed ^ uint64(off)*7919 + 13
			mutate(buf, seed, seed, g.p.MutFrac)
		}
		// VM divergence: clone images differ slightly from image 0.
		if vm > 0 && g.p.VMDiverge > 0 {
			seed := g.opts.Seed ^ uint64(lba)*104729 + 29
			mutate(buf, seed, seed, g.p.VMDiverge)
		}
	}
	// Write history since the anchor: positions are (mostly) stable per
	// block — writes keep updating the same hot fields with new values.
	if version > anchor {
		posSeed := g.opts.Seed ^ uint64(lba)*52361 ^ uint64(anchor)*31
		valSeed := posSeed + uint64(version)*613
		mutate(buf, posSeed, valSeed, g.p.MutFrac)
		// A small drifting component so content still evolves.
		mutate(buf, valSeed, valSeed+1, g.p.MutFrac/8)
	}
}

// Fill is the initial-content oracle (blockdev.FillFunc): the data set
// as it exists before the measured run.
func (g *Generator) Fill(lba int64, buf []byte) {
	g.contentAt(lba, 0, 0, buf)
}

// WriteContent produces the content of the next write to lba and
// advances the block's version. The harness calls it once per written
// block, in stream order.
func (g *Generator) WriteContent(lba int64, buf []byte) {
	v := g.version[lba] + 1
	g.version[lba] = v
	if g.isFresh(lba, v) {
		g.freshAnchor[lba] = v
	}
	g.contentAt(lba, v, g.freshAnchor[lba], buf)
}

// CurrentContent reproduces the latest written content of lba (for
// verification in tests).
func (g *Generator) CurrentContent(lba int64, buf []byte) {
	g.contentAt(lba, g.version[lba], g.freshAnchor[lba], buf)
}

// Summary describes the scaled stream for logs.
func (g *Generator) Summary() string {
	return fmt.Sprintf("%s: %d ops over %s (scale %.4g, %d VMs)",
		g.p.Name, g.numOps, ByteSize(g.dataBlocks*blockdev.BlockSize),
		g.opts.Scale, max(1, g.p.VMs))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
