// Package workload synthesizes the six benchmarks of the paper's
// evaluation (§4.4, Tables 3–4) as deterministic, content-bearing
// block-level request streams.
//
// Replaying address traces is not enough for I-CASH — deltas are content
// dependent — so each generator produces block *contents* with the
// statistical properties the paper relies on: temporal locality (Zipf
// reuse), sequential runs, families of similar blocks (content
// locality), a measured fraction of bytes changed per write (the paper
// cites 5–20% of bits, §2.2), and near-identical VM images for the
// multi-VM experiments (§3.1).
package workload

import (
	"fmt"

	"icash/internal/blockdev"
	"icash/internal/sim"
)

// Profile describes one benchmark's block-level behaviour. The request
// counts, sizes and data-set sizes come from the paper's Table 4; the
// locality parameters are tuned to reproduce the paper's qualitative
// behaviour (which system wins on which benchmark).
type Profile struct {
	// Name is the benchmark name as the paper spells it.
	Name string
	// Description matches Table 3.
	Description string

	// DataBytes is the benchmark data-set size (Table 4).
	DataBytes int64
	// PaperReads and PaperWrites are the request counts from Table 4.
	PaperReads, PaperWrites int64
	// AvgReadBytes and AvgWriteBytes are the mean request sizes (Table 4).
	AvgReadBytes, AvgWriteBytes int

	// Skew is the Zipf exponent for temporal locality; <= 0 is uniform.
	Skew float64
	// SeqFraction is the probability a request continues sequentially
	// after the previous one.
	SeqFraction float64
	// MutFrac is the fraction of bytes rewritten per block write — the
	// content-locality knob (paper: 5–20% of bits change).
	MutFrac float64
	// Families is the number of distinct base-content families; blocks
	// in one family are similar to each other.
	Families int
	// DupFrac is the fraction of blocks identical to their family base
	// (dedup-able content).
	DupFrac float64
	// AppCPU is application compute per request, which sets the I/O to
	// compute balance and thus CPU utilization and app-level throughput.
	AppCPU sim.Duration
	// IOsPerTxn groups requests into application transactions for
	// throughput reporting (transactions/s, requests/s).
	IOsPerTxn int

	// VMs > 1 runs the multi-VM variant: the data set is VMs cloned
	// images, and requests pick a VM then an offset (paper §5.1, Figures
	// 15–16).
	VMs int
	// VMDiverge is the content divergence between cloned images.
	VMDiverge float64

	// VMRAMBytes is the guest RAM from Table 4; the harness models the
	// guest OS page cache with it, identically for every storage system.
	VMRAMBytes int64
	// SSDCacheBytes is the SSD provisioned for I-CASH, LRU and Dedup in
	// this benchmark's experiment (§5.1; typically ~10% of the data set).
	SSDCacheBytes int64
	// DeltaRAMBytes is the I-CASH delta-buffer RAM for this experiment.
	DeltaRAMBytes int64
	// BaseCPUUtil is the benchmark's application CPU utilization level
	// (Figures 6b/8b/10b); the storage stack's compute is added on top.
	BaseCPUUtil float64
	// PCFraction is the share of VM RAM acting as a page cache over the
	// virtual disk. Databases running with direct I/O bypass the page
	// cache almost entirely; file and mail servers use much more of
	// their RAM for caching.
	PCFraction float64
	// FreshWriteFrac is the fraction of writes that replace a block with
	// entirely new content (new pages, new files) rather than modifying
	// it. Fresh content defeats delta compression, so these writes are
	// what drives I-CASH's residual SSD write-throughs (§5.3, Table 6).
	FreshWriteFrac float64
}

// ReadFraction returns the read share of requests.
func (p Profile) ReadFraction() float64 {
	t := p.PaperReads + p.PaperWrites
	if t == 0 {
		return 0.5
	}
	return float64(p.PaperReads) / float64(t)
}

// PaperOps returns the paper's total request count.
func (p Profile) PaperOps() int64 { return p.PaperReads + p.PaperWrites }

// DataBlocks returns the data-set size in blocks.
func (p Profile) DataBlocks() int64 {
	return (p.DataBytes + blockdev.BlockSize - 1) / blockdev.BlockSize
}

// String identifies the profile.
func (p Profile) String() string {
	return fmt.Sprintf("%s (%s, %.0f%% reads)", p.Name, ByteSize(p.DataBytes), 100*p.ReadFraction())
}

// ByteSize formats a byte count the way the paper's tables do.
func ByteSize(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.0fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.0fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// SysBench is the OLTP database benchmark (Table 4 row 1): hot, highly
// content-local database pages, moderate writes.
func SysBench() Profile {
	return Profile{
		Name:        "SysBench",
		Description: "OLTP benchmark",
		DataBytes:   960 << 20,
		PaperReads:  619_000, PaperWrites: 236_000,
		AvgReadBytes: 6656, AvgWriteBytes: 7680,
		Skew: 1.40, SeqFraction: 0.10,
		MutFrac: 0.02, Families: 64, DupFrac: 0.05,
		AppCPU: 600 * sim.Microsecond, IOsPerTxn: 9,
		VMRAMBytes: 256 << 20, SSDCacheBytes: 128 << 20, DeltaRAMBytes: 32 << 20,
		BaseCPUUtil: 0.52, PCFraction: 0.12, FreshWriteFrac: 0.04,
	}
}

// Hadoop is the MapReduce WordCount job (Table 4 row 2): large
// sequential reads and writes over a 4.4 GB data set.
func Hadoop() Profile {
	return Profile{
		Name:        "Hadoop",
		Description: "MapReduce WordCount job",
		DataBytes:   44 * (1 << 30) / 10, // 4.4 GB
		PaperReads:  241_000, PaperWrites: 62_000,
		AvgReadBytes: 20992, AvgWriteBytes: 101376,
		Skew: 0.80, SeqFraction: 0.85,
		MutFrac: 0.02, Families: 128, DupFrac: 0.10,
		AppCPU: 1800 * sim.Microsecond, IOsPerTxn: 32,
		VMRAMBytes: 512 << 20, SSDCacheBytes: 512 << 20, DeltaRAMBytes: 256 << 20,
		BaseCPUUtil: 0.82, PCFraction: 0.50, FreshWriteFrac: 0.15,
	}
}

// TPCC is the OLTP warehouse benchmark (Table 4 row 3): small random
// transactions, frequent commits, write-rich.
func TPCC() Profile {
	return Profile{
		Name:        "TPC-C",
		Description: "Database server workload (TPCC-UVa, 5 warehouses)",
		DataBytes:   1200 << 20,
		PaperReads:  339_000, PaperWrites: 156_000,
		AvgReadBytes: 13312, AvgWriteBytes: 10752,
		Skew: 1.35, SeqFraction: 0.05,
		MutFrac: 0.02, Families: 96, DupFrac: 0.05,
		AppCPU: 1400 * sim.Microsecond, IOsPerTxn: 12,
		VMRAMBytes: 256 << 20, SSDCacheBytes: 128 << 20, DeltaRAMBytes: 64 << 20,
		BaseCPUUtil: 0.51, PCFraction: 0.70, FreshWriteFrac: 0.08,
	}
}

// LoadSim is the Exchange mail-server load simulator (Table 4 row 4):
// an almost fully random workload with little locality of either kind —
// the benchmark where the paper's Fusion-io baseline wins (§5.1).
func LoadSim() Profile {
	return Profile{
		Name:        "LoadSim",
		Description: "Exchange mail server benchmark (LoadSim 2003)",
		DataBytes:   175 * (1 << 30) / 10, // 17.5 GB
		PaperReads:  4_329_000, PaperWrites: 704_000,
		AvgReadBytes: 12288, AvgWriteBytes: 11776,
		Skew: 0.05, SeqFraction: 0.02,
		MutFrac: 0.30, Families: 4096, DupFrac: 0.01,
		AppCPU: 400 * sim.Microsecond, IOsPerTxn: 10,
		VMRAMBytes: 512 << 20, SSDCacheBytes: 1 << 30, DeltaRAMBytes: 256 << 20,
		BaseCPUUtil: 0.45, PCFraction: 0.25, FreshWriteFrac: 0.50,
	}
}

// SPECsfs is the NFS file-server benchmark (Table 4 row 5): heavily
// write-intensive with good content similarity between old and new data.
func SPECsfs() Profile {
	return Profile{
		Name:        "SPEC-sfs",
		Description: "NFS file server (100 LOADs)",
		DataBytes:   10 << 30,
		PaperReads:  64_000, PaperWrites: 715_000,
		AvgReadBytes: 6144, AvgWriteBytes: 17408,
		Skew: 0.70, SeqFraction: 0.30,
		MutFrac: 0.03, Families: 256, DupFrac: 0.08,
		AppCPU: 450 * sim.Microsecond, IOsPerTxn: 8,
		VMRAMBytes: 512 << 20, SSDCacheBytes: 1 << 30, DeltaRAMBytes: 128 << 20,
		BaseCPUUtil: 0.48, PCFraction: 0.50, FreshWriteFrac: 0.60,
	}
}

// RUBiS is the auction-site e-commerce benchmark (Table 4 row 6): over
// 90% reads over a hot 1.8 GB database.
func RUBiS() Profile {
	return Profile{
		Name:        "RUBiS",
		Description: "e-Commerce web server workload (300 clients)",
		DataBytes:   1800 << 20,
		PaperReads:  799_000, PaperWrites: 7_000,
		AvgReadBytes: 4608, AvgWriteBytes: 20480,
		Skew: 1.30, SeqFraction: 0.10,
		MutFrac: 0.05, Families: 64, DupFrac: 0.05,
		AppCPU: 900 * sim.Microsecond, IOsPerTxn: 11,
		VMRAMBytes: 256 << 20, SSDCacheBytes: 128 << 20, DeltaRAMBytes: 32 << 20,
		BaseCPUUtil: 0.55, PCFraction: 0.25, FreshWriteFrac: 0.05,
	}
}

// TPCC5VM is five concurrent TPC-C virtual machines with distinct data
// sets (Table 4 row 7; Figure 15).
func TPCC5VM() Profile {
	return Profile{
		Name:        "TPC-C 5VMs",
		Description: "Five TPC-C virtual machines, 1-5 warehouses",
		DataBytes:   52 * (1 << 30) / 10, // 5.2 GB
		PaperReads:  256_000, PaperWrites: 153_000,
		AvgReadBytes: 23552, AvgWriteBytes: 23040,
		Skew: 1.35, SeqFraction: 0.05,
		MutFrac: 0.04, Families: 96, DupFrac: 0.05,
		AppCPU: 1400 * sim.Microsecond, IOsPerTxn: 12,
		VMs: 5, VMDiverge: 0.01,
		VMRAMBytes: 256 << 20, SSDCacheBytes: 512 << 20, DeltaRAMBytes: 512 << 20,
		BaseCPUUtil: 0.50, PCFraction: 0.70, FreshWriteFrac: 0.08,
	}
}

// RUBiS5VM is five concurrent RUBiS virtual machines (Table 4 row 8;
// Figure 16).
func RUBiS5VM() Profile {
	return Profile{
		Name:        "RUBiS 5VMs",
		Description: "Five RUBiS virtual machines, 20-24 items per page",
		DataBytes:   10 << 30,
		PaperReads:  3_396_000, PaperWrites: 52_000,
		AvgReadBytes: 5632, AvgWriteBytes: 25088,
		Skew: 1.30, SeqFraction: 0.10,
		MutFrac: 0.05, Families: 64, DupFrac: 0.05,
		AppCPU: 900 * sim.Microsecond, IOsPerTxn: 11,
		VMs: 5, VMDiverge: 0.01,
		VMRAMBytes: 256 << 20, SSDCacheBytes: 512 << 20, DeltaRAMBytes: 512 << 20,
		BaseCPUUtil: 0.55, PCFraction: 0.25, FreshWriteFrac: 0.05,
	}
}

// RandRead is a synthetic uniform random-read microbenchmark (not in
// Table 4): 4 KB reads, no skew, no sequentiality, negligible compute
// and page cache. It isolates device-level parallelism — the queue-depth
// scaling appendix drives it against RAID0 to show a 4-disk array
// approaching 4x the QD=1 throughput once enough requests are in flight.
func RandRead() Profile {
	return Profile{
		Name:        "RandRead",
		Description: "synthetic uniform 4KB random reads (QD scaling)",
		DataBytes:   960 << 20,
		PaperReads:  800_000, PaperWrites: 0,
		AvgReadBytes: 4096, AvgWriteBytes: 4096,
		Skew: 0, SeqFraction: 0,
		MutFrac: 0.02, Families: 64, DupFrac: 0.05,
		AppCPU: 100 * sim.Microsecond, IOsPerTxn: 1,
		VMRAMBytes: 64 << 20, SSDCacheBytes: 96 << 20, DeltaRAMBytes: 32 << 20,
		BaseCPUUtil: 0.10, PCFraction: 0.02, FreshWriteFrac: 0,
	}
}

// RandWrite is the write-side companion of RandRead: 4 KB content-local
// random writes, no skew, negligible compute and page cache. Every
// operation dirties a delta, so the run is dominated by the delta-log
// commit path — the queue-depth appendix drives it against I-CASH to
// show how group commit turns per-slot flushes into few large
// sequential HDD I/Os as writers overlap.
func RandWrite() Profile {
	return Profile{
		Name:        "RandWrite",
		Description: "synthetic content-local 4KB random writes (group-commit scaling)",
		DataBytes:   960 << 20,
		PaperReads:  0, PaperWrites: 800_000,
		AvgReadBytes: 4096, AvgWriteBytes: 4096,
		Skew: 0, SeqFraction: 0,
		MutFrac: 0.02, Families: 64, DupFrac: 0.05,
		AppCPU: 100 * sim.Microsecond, IOsPerTxn: 1,
		VMRAMBytes: 64 << 20, SSDCacheBytes: 96 << 20, DeltaRAMBytes: 32 << 20,
		BaseCPUUtil: 0.10, PCFraction: 0.02, FreshWriteFrac: 0,
	}
}

// Table4 returns every benchmark profile in the paper's Table 4 order.
func Table4() []Profile {
	return []Profile{
		SysBench(), Hadoop(), TPCC(), LoadSim(), SPECsfs(), RUBiS(),
		TPCC5VM(), RUBiS5VM(),
	}
}

// ByName returns the profile with the given name (case-sensitive, as
// printed by Table4).
func ByName(name string) (Profile, bool) {
	for _, p := range Table4() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
