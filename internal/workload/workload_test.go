package workload

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"icash/internal/blockdev"
)

func TestTable4Profiles(t *testing.T) {
	profiles := Table4()
	if len(profiles) != 8 {
		t.Fatalf("Table 4 has 8 rows, got %d", len(profiles))
	}
	names := map[string]bool{}
	for _, p := range profiles {
		if names[p.Name] {
			t.Errorf("duplicate profile %q", p.Name)
		}
		names[p.Name] = true
		if p.DataBytes <= 0 || p.PaperOps() <= 0 {
			t.Errorf("%s: sizes must be positive", p.Name)
		}
		if p.ReadFraction() < 0 || p.ReadFraction() > 1 {
			t.Errorf("%s: read fraction %f", p.Name, p.ReadFraction())
		}
		if p.MutFrac <= 0 || p.MutFrac > 0.5 {
			t.Errorf("%s: MutFrac %f outside the paper's content-locality range", p.Name, p.MutFrac)
		}
	}
	// Spot checks against the paper's Table 4.
	sb, _ := ByName("SysBench")
	if sb.PaperReads != 619_000 || sb.PaperWrites != 236_000 || sb.DataBytes != 960<<20 {
		t.Errorf("SysBench row diverges from Table 4: %+v", sb)
	}
	ru, _ := ByName("RUBiS")
	if f := ru.ReadFraction(); f < 0.9 {
		t.Errorf("RUBiS must be >90%% reads (paper), got %f", f)
	}
	sfs, _ := ByName("SPEC-sfs")
	if f := sfs.ReadFraction(); f > 0.2 {
		t.Errorf("SPEC-sfs must be write-intensive, got read fraction %f", f)
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName on unknown benchmark")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	opts := Options{Scale: 1.0 / 512, Seed: 7}
	g1 := NewGenerator(SysBench(), opts)
	g2 := NewGenerator(SysBench(), opts)
	buf1 := make([]byte, blockdev.BlockSize)
	buf2 := make([]byte, blockdev.BlockSize)
	for {
		r1, ok1 := g1.Next()
		r2, ok2 := g2.Next()
		if ok1 != ok2 || r1 != r2 {
			t.Fatal("same seed produced different streams")
		}
		if !ok1 {
			break
		}
		if r1.Write {
			g1.WriteContent(r1.LBA, buf1)
			g2.WriteContent(r2.LBA, buf2)
			if !bytes.Equal(buf1, buf2) {
				t.Fatal("same seed produced different contents")
			}
		}
	}
}

func TestGeneratorResetReproduces(t *testing.T) {
	g := NewGenerator(TPCC(), Options{Scale: 1.0 / 512, Seed: 9})
	var first []Request
	for i := 0; i < 100; i++ {
		r, _ := g.Next()
		first = append(first, r)
	}
	g.Reset()
	for i := 0; i < 100; i++ {
		r, _ := g.Next()
		if r != first[i] {
			t.Fatalf("request %d differs after Reset", i)
		}
	}
}

func TestStreamMatchesProfile(t *testing.T) {
	for _, p := range []Profile{SysBench(), TPCC(), RUBiS(), SPECsfs()} {
		g := NewGenerator(p, Options{Scale: 1.0 / 128, Seed: 3})
		var reads, writes, readBlocks, writeBlocks int64
		for {
			r, ok := g.Next()
			if !ok {
				break
			}
			if r.Blocks < 1 || r.Blocks > 64 {
				t.Fatalf("%s: request length %d", p.Name, r.Blocks)
			}
			if r.LBA < 0 || r.LBA+int64(r.Blocks) > g.DataBlocks() {
				t.Fatalf("%s: request out of range", p.Name)
			}
			if r.Write {
				writes++
				writeBlocks += int64(r.Blocks)
			} else {
				reads++
				readBlocks += int64(r.Blocks)
			}
		}
		gotFrac := float64(reads) / float64(reads+writes)
		if math.Abs(gotFrac-p.ReadFraction()) > 0.05 {
			t.Errorf("%s: read fraction %f, profile %f", p.Name, gotFrac, p.ReadFraction())
		}
		if reads > 100 {
			avg := float64(readBlocks) / float64(reads) * blockdev.BlockSize
			if avg < float64(p.AvgReadBytes)*0.5 || avg > float64(p.AvgReadBytes)*2 {
				t.Errorf("%s: avg read %f vs profile %d", p.Name, avg, p.AvgReadBytes)
			}
		}
	}
}

func TestContentLocality(t *testing.T) {
	p := SysBench()
	g := NewGenerator(p, Options{Scale: 1.0 / 256, Seed: 1})
	a := make([]byte, blockdev.BlockSize)
	b := make([]byte, blockdev.BlockSize)

	// A rewrite changes roughly MutFrac of the bytes.
	lba := int64(10)
	g.Fill(lba, a)
	g.WriteContent(lba, b)
	changed := 0
	for i := range a {
		if a[i] != b[i] {
			changed++
		}
	}
	frac := float64(changed) / float64(len(a))
	if frac < p.MutFrac/4 || frac > p.MutFrac*4 {
		t.Fatalf("rewrite changed %f of bytes, MutFrac %f", frac, p.MutFrac)
	}

	// Successive writes keep deltas bounded (stable hot fields).
	g.WriteContent(lba, a)
	g.WriteContent(lba, a)
	g.WriteContent(lba, a)
	g.Fill(lba, b) // version-0 content
	changed = 0
	for i := range a {
		if a[i] != b[i] {
			changed++
		}
	}
	if float64(changed)/float64(len(a)) > 4*p.MutFrac {
		t.Fatalf("content diverged after repeated writes: %d changed bytes", changed)
	}
}

func TestCurrentContentTracksWrites(t *testing.T) {
	g := NewGenerator(SysBench(), Options{Scale: 1.0 / 256, Seed: 2})
	w := make([]byte, blockdev.BlockSize)
	c := make([]byte, blockdev.BlockSize)
	for i := 0; i < 5; i++ {
		g.WriteContent(99, w)
		g.CurrentContent(99, c)
		if !bytes.Equal(w, c) {
			t.Fatalf("CurrentContent diverges at version %d", i+1)
		}
	}
}

func TestVMImagesNearIdentical(t *testing.T) {
	p := TPCC5VM()
	g := NewGenerator(p, Options{Scale: 1.0 / 256, Seed: 4})
	img := g.ImageBlocks()
	if img*5 != g.DataBlocks() {
		t.Fatalf("5 VMs: image %d × 5 != data %d", img, g.DataBlocks())
	}
	a := make([]byte, blockdev.BlockSize)
	b := make([]byte, blockdev.BlockSize)
	for off := int64(0); off < 20; off++ {
		g.Fill(off, a)     // VM 0
		g.Fill(img+off, b) // VM 1, same offset
		changed := 0
		for i := range a {
			if a[i] != b[i] {
				changed++
			}
		}
		frac := float64(changed) / float64(len(a))
		if frac > 5*p.VMDiverge+0.01 {
			t.Fatalf("offset %d: VM images diverge by %f", off, frac)
		}
	}
}

func TestFreshWritesHappen(t *testing.T) {
	p := SPECsfs() // FreshWriteFrac 0.6
	g := NewGenerator(p, Options{Scale: 1.0 / 1024, Seed: 5})
	fresh := 0
	const trials = 400
	for v := uint32(1); v <= trials; v++ {
		if g.isFresh(123, v) {
			fresh++
		}
	}
	frac := float64(fresh) / trials
	if math.Abs(frac-p.FreshWriteFrac) > 0.1 {
		t.Fatalf("fresh fraction %f, profile %f", frac, p.FreshWriteFrac)
	}
	// A fresh write replaces content wholesale.
	g2 := NewGenerator(p, Options{Scale: 1.0 / 1024, Seed: 5})
	old := make([]byte, blockdev.BlockSize)
	cur := make([]byte, blockdev.BlockSize)
	g2.Fill(7, old)
	sawFresh := false
	for i := 0; i < 50 && !sawFresh; i++ {
		g2.WriteContent(7, cur)
		changed := 0
		for j := range cur {
			if cur[j] != old[j] {
				changed++
			}
		}
		if float64(changed)/float64(len(cur)) > 0.9 {
			sawFresh = true
		}
		copy(old, cur)
	}
	if !sawFresh {
		t.Fatal("no fresh write observed in 50 writes at FreshWriteFrac 0.6")
	}
}

func TestByteSize(t *testing.T) {
	cases := map[int64]string{
		512:       "512B",
		2 << 10:   "2KB",
		960 << 20: "960MB",
		10 << 30:  "10.0GB",
	}
	for n, want := range cases {
		if got := ByteSize(n); got != want {
			t.Errorf("ByteSize(%d) = %q, want %q", n, got, want)
		}
	}
}

// Property: Fill is a pure function of (seed, lba).
func TestFillPureProperty(t *testing.T) {
	g := NewGenerator(RUBiS(), Options{Scale: 1.0 / 512, Seed: 8})
	f := func(raw uint32) bool {
		lba := int64(raw) % g.DataBlocks()
		a := make([]byte, blockdev.BlockSize)
		b := make([]byte, blockdev.BlockSize)
		g.Fill(lba, a)
		g.Fill(lba, b)
		return bytes.Equal(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
